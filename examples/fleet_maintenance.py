#!/usr/bin/env python
"""Fleet maintenance: churn, fragmentation diagnosis, repacking.

Run with::

    python examples/fleet_maintenance.py

A day in the life of a consolidated fleet: tenants arrive and depart
(churn), the packing fragments, the diagnostics show where capacity
leaks, and a repacking pass drains under-utilized servers — with
robustness verified after every step.
"""

import numpy as np

from repro import CubeFit, audit
from repro.algorithms.repack import Repacker
from repro.analysis.diagnostics import explain
from repro.core.tenant import Tenant
from repro.sim.elasticity import ElasticityConfig, run_elasticity
from repro.workloads import UniformLoad


def churn_phase(algo, steps=700, seed=0):
    """Interleave arrivals and departures (45% departure odds)."""
    rng = np.random.default_rng(seed)
    alive, next_id = [], 0
    for _ in range(steps):
        if alive and rng.random() < 0.45:
            algo.remove(alive.pop(int(rng.integers(len(alive)))))
        else:
            algo.place(Tenant(next_id, float(rng.uniform(0.02, 0.6))))
            alive.append(next_id)
            next_id += 1
    return len(alive)


def main() -> None:
    algo = CubeFit(gamma=2, num_classes=10)

    # --- 1. Churn fragments the fleet -----------------------------
    tenants = churn_phase(algo)
    placement = algo.placement
    print(f"after churn: {tenants} live tenants on "
          f"{placement.num_nonempty_servers} servers "
          f"(recycled {algo.stats.get('recycled_slots', 0)} departed "
          f"slot sets along the way)")
    audit(placement).raise_if_violated()

    # --- 2. Diagnose where the capacity went -----------------------
    report = explain(placement)
    print(f"\ncapacity split: used {report.fraction('used'):.1%}, "
          f"failover reserve {report.fraction('reserve'):.1%}, "
          f"slack {report.fraction('slack'):.1%}")
    print(report.to_table().to_text())

    # --- 3. Repack: drain the stragglers ---------------------------
    plan = Repacker(placement).repack()
    print(f"\nrepack: drained {len(plan.drained_servers)} servers by "
          f"migrating {len(plan.migrations)} tenants "
          f"({plan.load_migrated:.2f} load): "
          f"{plan.servers_before} -> {plan.servers_after} servers")
    audit(placement).raise_if_violated()
    print("post-repack robustness audit: OK")

    # --- 4. Elastic tenants: what do resizes cost? ------------------
    result = run_elasticity(
        lambda: CubeFit(gamma=2, num_classes=10), UniformLoad(0.4),
        ElasticityConfig(n_tenants=150, n_updates=300, seed=1))
    print(f"\nelasticity study: {result.updates} resizes -> "
          f"{result.migrations} migrations "
          f"({result.migration_rate:.0%}), {result.in_place} absorbed "
          f"in place; fleet {result.servers_start} -> "
          f"{result.servers_end} servers "
          f"({'robust throughout' if result.robust_throughout else 'VIOLATED'})")
    print("\nlesson: churn and elasticity fragment any online packing; "
          "periodic\nrepacking buys the servers back at a bounded "
          "migration cost.")


if __name__ == "__main__":
    main()
