"""Exact offline optimum for the robust placement problem.

The paper's "near-optimal" claim is substantiated in
:mod:`repro.algorithms.lower_bound` by *bounds* on OPT (total capacity,
Theorem 2's ``W/r`` weight argument).  Bounds only ever show a heuristic
is at most this far from optimal; this module computes the optimum
itself, so the optimality *gap* can be reported per workload instead of
inferred.

The underlying integer program has binary variables
``assign[tenant, replica, server]`` with

* one row per (tenant, replica): each replica lands on exactly one
  server, the ``gamma`` replicas of a tenant on pairwise distinct ones;
* one capacity row per server: the replica loads it hosts sum to at
  most the unit capacity;
* one survivability row per (server, failure set): the server's level
  plus the shared load redirected to it by any ``f`` failed partners
  stays within capacity.  Shared loads are non-negative, so only the
  ``f`` *largest* partners constrain — exactly the accounting
  :meth:`repro.core.placement.PlacementState.worst_failover_load` uses;

minimizing the number of open servers.  Rather than hand the program to
an external solver (none is available here, and float LP relaxations
would blur the epsilon semantics the audits pin down), it is solved by
branch-and-bound over exact :class:`fractions.Fraction` arithmetic in
the style of :mod:`repro.analysis.competitive`:

* tenants are branched in descending load order; a branch assigns the
  next tenant a ``gamma``-subset of servers;
* symmetry is broken on server order — fresh servers are only ever
  opened "next", so permutations of interchangeable server ids are
  explored once;
* branches are pruned against the incumbent and an exact capacity
  bound on the unplaced remainder; the incumbent is seeded from
  :class:`repro.algorithms.offline.OfflineFirstFitDecreasing`, and the
  whole search short-circuits when the incumbent meets
  :func:`certified_lower_bound`;
* a node/time budget (:class:`SearchBudget`) degrades gracefully: an
  exhausted search returns a **certified interval** ``[LB, UB]`` — the
  incumbent as upper bound, the smallest optimistic bound over the
  abandoned subtrees as lower bound — never a silently wrong "optimum".

Numeric contract: the oracle measures the *same* packings the float
heuristics produce.  Replica loads are the exact values of the float
quotients ``load / gamma`` (each converted to ``Fraction`` losslessly),
and the feasibility predicate is ``level + worst_failover <= capacity +
LOAD_EPS`` with the audit's tolerance as an exact rational — so an
oracle packing always passes :func:`repro.core.validation.audit`, and a
heuristic can never "beat" the oracle by epsilon-squeezing.

:func:`brute_force_optimum` is the oracle's own test oracle: an
independent exhaustive enumeration (restricted-growth canonical server
order, from-scratch feasibility, no load sorting and no bounding
machinery beyond the trivial server-count cutoff) for up to
:data:`BRUTE_FORCE_MAX_TENANTS` tenants, differential-tested against
the branch-and-bound in ``tests/property/test_prop_optimum.py``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from fractions import Fraction
from heapq import nlargest
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import TINY_POLICY_LAST_CLASS
from ..core.placement import PlacementState
from ..core.tenant import LOAD_EPS, Tenant
from ..errors import ConfigurationError

#: Hard cap on :func:`brute_force_optimum` input size — the enumeration
#: is super-exponential and exists only as a differential reference.
BRUTE_FORCE_MAX_TENANTS = 6

#: Exact feasibility tolerance: the float audits accept ``slack >=
#: -LOAD_EPS``, and the oracle mirrors that predicate in rationals.
EXACT_EPS = Fraction(LOAD_EPS)

_ONE = Fraction(1)


@dataclass(frozen=True)
class SearchBudget:
    """Resource limits for :func:`branch_and_bound_optimum`.

    ``max_nodes`` caps the number of search-tree nodes expanded;
    ``max_seconds`` caps wall-clock time (checked every few hundred
    nodes).  ``None`` means unlimited.  An exhausted budget does not
    fail the solve — it degrades the result to a certified interval.
    """

    max_nodes: Optional[int] = 200_000
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ConfigurationError(
                f"max_nodes must be >= 1, got {self.max_nodes}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ConfigurationError(
                f"max_seconds must be positive, got {self.max_seconds}")


@dataclass
class OptimumResult:
    """Outcome of an exact (or budget-limited) optimum solve.

    ``lower_bound == upper_bound`` means the optimum is certified:
    ``servers`` is OPT and ``assignment`` attains it.  Otherwise the
    search ran out of budget and OPT is certified to lie in
    ``[lower_bound, upper_bound]``, with ``assignment`` attaining the
    upper bound.
    """

    gamma: int
    failures: int
    lower_bound: int
    upper_bound: int
    #: Search-tree nodes expanded (0 when the seed already met the
    #: certified lower bound).
    nodes: int = 0
    #: True iff the budget ran out before the search space was closed.
    exhausted: bool = False
    #: Per-tenant server ids, in the *input* load order; entry ``i`` is
    #: the sorted tuple of servers hosting tenant ``i``'s replicas.
    assignment: Tuple[Tuple[int, ...], ...] = field(default_factory=tuple)

    @property
    def certified(self) -> bool:
        """Whether ``upper_bound`` is proven optimal."""
        return self.lower_bound == self.upper_bound

    @property
    def servers(self) -> int:
        """Server count of the best packing found (OPT when certified)."""
        return self.upper_bound

    def optimum(self) -> int:
        """The certified optimum; raises if only an interval is known."""
        if not self.certified:
            raise ConfigurationError(
                f"optimum not certified: search exhausted with "
                f"OPT in [{self.lower_bound}, {self.upper_bound}]")
        return self.upper_bound

    def __str__(self) -> str:
        status = "OPT" if self.certified else "OPT in"
        interval = (str(self.upper_bound) if self.certified
                    else f"[{self.lower_bound}, {self.upper_bound}]")
        return (f"OptimumResult({status} {interval}; gamma={self.gamma}, "
                f"failures={self.failures}, nodes={self.nodes}"
                f"{', exhausted' if self.exhausted else ''})")


def certified_lower_bound(loads: Sequence[float], gamma: int,
                          failures: Optional[int] = None,
                          num_classes: int = 10) -> int:
    """Best lower bound on OPT that is valid for this failure budget.

    The capacity bound holds for any packing.  Theorem 2's ``W/r``
    weight bound additionally requires a *valid robust* packing at the
    full failure budget with real replication — it is only applied when
    ``gamma >= 2`` and ``failures == gamma - 1``.
    """
    f = _validate(loads, gamma, failures)
    from ..algorithms.lower_bound import (best_lower_bound,
                                          capacity_lower_bound)
    if gamma >= 2 and f == gamma - 1:
        return best_lower_bound(loads, gamma, num_classes,
                                TINY_POLICY_LAST_CLASS)
    return capacity_lower_bound(loads)


def _validate(loads: Sequence[float], gamma: int,
              failures: Optional[int]) -> int:
    """Shared argument validation; returns the effective failure budget."""
    if gamma < 1:
        raise ConfigurationError(f"gamma must be >= 1, got {gamma}")
    f = gamma - 1 if failures is None else failures
    if f < 0:
        raise ConfigurationError(
            f"failures must be non-negative, got {f}")
    for i, load in enumerate(loads):
        if not load > 0.0:
            raise ConfigurationError(
                f"tenant loads must be positive, got {load!r} "
                f"at index {i}")
    return f


def _replica_fractions(loads: Sequence[float], gamma: int,
                       f: int) -> List[Fraction]:
    """Exact per-replica loads, rejecting unpackable tenants.

    A tenant's own servers each carry one replica plus, in the worst
    failure set, ``min(f, gamma - 1)`` sibling shares — no packing can
    do better, so ``r * (1 + min(f, gamma - 1)) <= 1 + eps`` is a
    per-tenant packability requirement (and, met, makes the one-tenant-
    per-server-group packing feasible).
    """
    replicas: List[Fraction] = []
    factor = 1 + min(f, gamma - 1)
    for i, load in enumerate(loads):
        r = Fraction(load / gamma)
        if r * factor > _ONE + EXACT_EPS:
            raise ConfigurationError(
                f"tenant load {load!r} (index {i}) cannot be packed "
                f"robustly at gamma={gamma}, failures={f}: each replica "
                f"of {load / gamma:.6g} implies a worst-case level of "
                f"{float(r * factor):.6g} > capacity 1")
        replicas.append(r)
    return replicas


def _scaled_ints(replicas: Sequence[Fraction]) -> Tuple[List[int], int]:
    """Rescale exact replica loads to integers over a common denominator.

    Every replica load is the exact value of an IEEE-754 quotient, and
    ``LOAD_EPS`` is itself a float, so all denominators are powers of
    two; their lcm is simply the largest one.  Returns the scaled loads
    and the scaled feasibility limit ``capacity + LOAD_EPS``.  The hot
    search loop then runs entirely on machine-speed big-int add/compare
    while staying bit-for-bit equivalent to ``Fraction`` arithmetic.
    """
    denom = max([EXACT_EPS.denominator]
                + [r.denominator for r in replicas])
    scaled = [r.numerator * (denom // r.denominator) for r in replicas]
    limit = denom + EXACT_EPS.numerator * (denom // EXACT_EPS.denominator)
    return scaled, limit


class _ExactPacking:
    """Incremental exact shared-load state over open servers.

    The rational twin of :class:`~repro.core.placement.PlacementState`,
    reduced to what the search needs: per-server levels, pairwise
    shared loads, and the top-``f`` feasibility test — all in the
    common-denominator integer domain of :func:`_scaled_ints`.
    """

    __slots__ = ("failures", "limit", "levels", "shared")

    def __init__(self, failures: int, limit: int) -> None:
        self.failures = failures
        self.limit = limit
        self.levels: List[int] = []
        self.shared: List[Dict[int, int]] = []

    def open_through(self, count: int) -> None:
        while len(self.levels) < count:
            self.levels.append(0)
            self.shared.append({})

    def place(self, servers: Sequence[int], r: int) -> None:
        levels = self.levels
        shared = self.shared
        for s in servers:
            levels[s] += r
        for a, b in itertools.combinations(servers, 2):
            shared[a][b] = shared[a].get(b, 0) + r
            shared[b][a] = shared[b].get(a, 0) + r

    def unplace(self, servers: Sequence[int], r: int) -> None:
        levels = self.levels
        shared = self.shared
        for s in servers:
            levels[s] -= r
        for a, b in itertools.combinations(servers, 2):
            shared[a][b] -= r
            if not shared[a][b]:
                del shared[a][b]
            shared[b][a] -= r
            if not shared[b][a]:
                del shared[b][a]

    def robust(self, server: int) -> bool:
        """The survivability row of ``server``, over its worst
        ``failures``-subset of partners (exact integer compare)."""
        worst = self.levels[server]
        shared = self.shared[server]
        f = self.failures
        if f > 0 and shared:
            if len(shared) <= f:
                worst += sum(shared.values())
            else:
                worst += sum(nlargest(f, shared.values()))
        return worst <= self.limit

    def feasible_after(self, servers: Sequence[int], r: int) -> bool:
        """Place, check exactly the touched survivability rows, keep
        the placement on success (roll back on failure).

        Placing a tenant changes levels and shared loads of *its*
        servers only, so those are the only rows that can newly fail.
        """
        self.place(servers, r)
        if all(self.robust(s) for s in servers):
            return True
        self.unplace(servers, r)
        return False


def _exactly_feasible(assignment: Sequence[Sequence[int]],
                      scaled: Sequence[int], limit: int,
                      failures: int) -> bool:
    """From-scratch exact feasibility of a complete assignment."""
    if not assignment:
        return True
    packing = _ExactPacking(failures, limit)
    packing.open_through(max(max(s) for s in assignment) + 1)
    for servers, r in zip(assignment, scaled):
        packing.place(servers, r)
    return all(packing.robust(s) for s in range(len(packing.levels)))


def _seed_incumbent(loads: Sequence[float], gamma: int, f: int,
                    scaled: Sequence[int], limit: int
                    ) -> Tuple[int, List[Tuple[int, ...]]]:
    """An exactly-feasible packing to start the search from.

    Tries offline FFD (a strong heuristic upper bound); if its float
    packing fails the exact predicate (possible only within a float
    rounding error of the tolerance boundary), falls back to the
    always-feasible one-tenant-per-server-group packing.
    """
    from ..algorithms.offline import OfflineFirstFitDecreasing
    ffd = OfflineFirstFitDecreasing(gamma=gamma, failures=f)
    ffd.consolidate(Tenant(tenant_id=i, load=load)
                    for i, load in enumerate(loads))
    assignment = [tuple(sorted(ffd.placement.tenant_servers(i).values()))
                  for i in range(len(loads))]
    if _exactly_feasible(assignment, scaled, limit, f):
        return ffd.placement.num_servers, assignment
    return (len(loads) * gamma,
            [tuple(range(i * gamma, (i + 1) * gamma))
             for i in range(len(loads))])


def branch_and_bound_optimum(loads: Sequence[float], gamma: int,
                             failures: Optional[int] = None,
                             budget: Optional[SearchBudget] = None,
                             num_classes: int = 10) -> OptimumResult:
    """Minimum servers of a robust packing of ``loads``, exactly.

    Returns a certified :class:`OptimumResult` when the search closes
    (``certified`` true, ``servers`` is OPT), or a certified interval
    when ``budget`` runs out first.  See the module docstring for the
    model and the search design.
    """
    f = _validate(loads, gamma, failures)
    if budget is None:
        budget = SearchBudget()
    if not loads:
        return OptimumResult(gamma=gamma, failures=f,
                             lower_bound=0, upper_bound=0)
    scaled_in, limit = _scaled_ints(_replica_fractions(loads, gamma, f))
    global_lb = max(1, certified_lower_bound(loads, gamma, f, num_classes))
    seed_count, seed_assignment = _seed_incumbent(loads, gamma, f,
                                                  scaled_in, limit)
    if seed_count <= global_lb:
        return OptimumResult(gamma=gamma, failures=f,
                             lower_bound=seed_count,
                             upper_bound=seed_count,
                             assignment=tuple(seed_assignment))

    order = sorted(range(len(loads)), key=lambda i: (-loads[i], i))
    replicas = [scaled_in[i] for i in order]
    n = len(replicas)
    packing = _ExactPacking(f, limit)
    best_count = [seed_count]
    best_assignment: List[List[Tuple[int, ...]]] = [list(seed_assignment)]
    current: List[Tuple[int, ...]] = [()] * n
    nodes = [0]
    exhausted = [False]
    #: Smallest optimistic bound over budget-abandoned subtrees; OPT
    #: cannot be below min(incumbent, this).
    abandoned_lb = [seed_count]
    deadline = (time.monotonic() + budget.max_seconds
                if budget.max_seconds is not None else None)
    max_nodes = budget.max_nodes

    def out_of_budget() -> bool:
        if max_nodes is not None and nodes[0] >= max_nodes:
            return True
        if deadline is not None and nodes[0] % 256 == 0 \
                and time.monotonic() > deadline:
            return True
        return False

    def node_bound(index: int, open_servers: int) -> int:
        """Exact optimistic bound on any completion of this node.

        The capacity argument per node reduces to a constant: open
        servers hold exactly the placed prefix load, so ``open + extra
        servers for the remainder`` telescopes to ``ceil(total replica
        load)`` — which :func:`certified_lower_bound` already covers.
        What remains node-specific is the open-server count itself and
        the distinctness requirement: every unplaced tenant needs
        ``gamma`` pairwise-distinct servers.
        """
        if index < n:
            open_servers = max(open_servers, gamma)
        return max(open_servers, global_lb)

    def recurse(index: int, open_servers: int) -> None:
        if best_count[0] <= global_lb:
            return  # incumbent provably optimal; unwind
        if index == n:
            best_count[0] = open_servers
            best_assignment[0] = list(current)
            return
        if out_of_budget():
            exhausted[0] = True
            abandoned_lb[0] = min(abandoned_lb[0],
                                  node_bound(index, open_servers))
            return
        nodes[0] += 1
        bound = node_bound(index, open_servers)
        if bound >= best_count[0]:
            return
        r = replicas[index]
        # Branch on how many fresh servers this tenant opens; fresh ids
        # are consecutive from ``open_servers`` (symmetry breaking).
        for new in range(0, gamma + 1):
            existing_needed = gamma - new
            if existing_needed > open_servers:
                continue
            total = open_servers + new
            if total >= best_count[0]:
                break  # more fresh servers only grows ``total``
            packing.open_through(total)
            fresh = tuple(range(open_servers, total))
            for existing in itertools.combinations(range(open_servers),
                                                   existing_needed):
                servers = existing + fresh
                if not packing.feasible_after(servers, r):
                    continue
                current[index] = servers
                recurse(index + 1, total)
                packing.unplace(servers, r)
                if exhausted[0]:
                    # This node's entry bound covers every unexplored
                    # sibling branch; record it and unwind fast.
                    abandoned_lb[0] = min(abandoned_lb[0], bound)
                    return
                if best_count[0] <= global_lb:
                    return

    recurse(0, 0)

    upper = best_count[0]
    if exhausted[0]:
        lower = max(global_lb, min(upper, abandoned_lb[0]))
    else:
        lower = upper
    # Incumbent improvements are strict, so the search-order assignment
    # is in play iff the seed was beaten; the seed is already in input
    # order, a found packing is mapped back through ``order``.
    if upper < seed_count:
        assignment: List[Tuple[int, ...]] = [()] * n
        for position, servers in enumerate(best_assignment[0]):
            assignment[order[position]] = tuple(sorted(servers))
    else:
        assignment = [tuple(sorted(s)) for s in seed_assignment]
    return OptimumResult(gamma=gamma, failures=f, lower_bound=lower,
                         upper_bound=upper, nodes=nodes[0],
                         exhausted=exhausted[0],
                         assignment=tuple(assignment))


def brute_force_optimum(loads: Sequence[float], gamma: int,
                        failures: Optional[int] = None) -> OptimumResult:
    """Exhaustive exact optimum for tiny instances (≤ 6 tenants).

    Deliberately *independent* of :func:`branch_and_bound_optimum`'s
    search machinery: tenants are taken in input order (no load
    sorting), every canonical assignment is enumerated via restricted
    growth (a fresh server is only ever "the next" id; feasibility is
    monotone — placing more tenants only adds load and shared load — so
    infeasible prefixes prune soundly), there is no seeded incumbent, no
    optimistic node bound and no budget: the only cutoff is the trivial
    "already using at least as many servers as the best complete
    packing", and the winning assignment is re-verified from scratch.
    Used as the oracle's own test oracle.
    """
    f = _validate(loads, gamma, failures)
    if len(loads) > BRUTE_FORCE_MAX_TENANTS:
        raise ConfigurationError(
            f"brute_force_optimum is exhaustive; got {len(loads)} "
            f"tenants (max {BRUTE_FORCE_MAX_TENANTS})")
    if not loads:
        return OptimumResult(gamma=gamma, failures=f,
                             lower_bound=0, upper_bound=0)
    scaled, limit = _scaled_ints(_replica_fractions(loads, gamma, f))
    n = len(loads)
    best = [n * gamma + 1]
    best_assignment: List[Optional[List[Tuple[int, ...]]]] = [None]
    prefix: List[Tuple[int, ...]] = []
    packing = _ExactPacking(f, limit)

    def enumerate_from(index: int, open_servers: int) -> None:
        if open_servers >= best[0]:
            return
        if index == n:
            best[0] = open_servers
            best_assignment[0] = list(prefix)
            return
        r = scaled[index]
        for new in range(0, gamma + 1):
            if gamma - new > open_servers:
                continue
            total = open_servers + new
            if total >= best[0]:
                continue
            packing.open_through(total)
            fresh = tuple(range(open_servers, total))
            for existing in itertools.combinations(range(open_servers),
                                                   gamma - new):
                servers = existing + fresh
                if not packing.feasible_after(servers, r):
                    continue
                prefix.append(servers)
                enumerate_from(index + 1, total)
                prefix.pop()
                packing.unplace(servers, r)

    enumerate_from(0, 0)
    assert best_assignment[0] is not None  # singleton packing always works
    assert _exactly_feasible(best_assignment[0], scaled, limit, f)
    return OptimumResult(
        gamma=gamma, failures=f, lower_bound=best[0], upper_bound=best[0],
        assignment=tuple(tuple(sorted(s)) for s in best_assignment[0]))


def assignment_to_placement(loads: Sequence[float],
                            assignment: Sequence[Sequence[int]],
                            gamma: int) -> PlacementState:
    """Materialize an oracle assignment as a float
    :class:`~repro.core.placement.PlacementState` (for the audits).

    Server ids are densified in first-use order; tenant ``i`` gets id
    ``i``.  The returned placement is exactly what
    :func:`repro.core.validation.audit` and friends expect.
    """
    if len(assignment) != len(loads):
        raise ConfigurationError(
            f"assignment covers {len(assignment)} tenants, "
            f"expected {len(loads)}")
    placement = PlacementState(gamma=gamma)
    dense: Dict[int, int] = {}
    for i, (load, servers) in enumerate(zip(loads, assignment)):
        targets = []
        for s in servers:
            if s not in dense:
                dense[s] = placement.open_server().server_id
            targets.append(dense[s])
        placement.place_tenant(Tenant(tenant_id=i, load=load), targets)
    return placement
