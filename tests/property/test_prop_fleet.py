"""Property-based differentials for the sharded fleet.

Two claims, each drawn over random workloads:

1. **A 1-shard fleet is the single controller.**  Driving the same
   operation stream through ``PlacementFleet(shards=1)`` and through a
   plain ``RobustBestFit`` + ``DurableStore`` produces bit-identical
   packings, WAL bytes, checkpoint payloads, and placement-level obs
   metrics.  Sharding must be a pure partitioning layer — zero
   behavioural drift at N=1.
2. **Routing is deterministic.**  Under a fixed seed the router maps
   an admission stream to the same shards on every run, for every
   policy and shard count; hash routing is additionally invariant to
   the admission batch size.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.naive import RobustBestFit
from repro.core.tenant import Tenant
from repro.fleet import PlacementFleet, PlacementRouter
from repro.obs import MetricsRegistry
from repro.store import DurableStore
from repro.store.wal import FSYNC_NEVER

loads = st.floats(min_value=0.01, max_value=0.9,
                  allow_nan=False).map(lambda x: round(x, 3))

#: (op, load) streams: place every tenant, then a random tail of
#: removes / resizes addressed by tenant index.
operations = st.lists(
    st.tuples(st.sampled_from(["place", "remove", "update"]), loads),
    min_size=1, max_size=25)


def _wal_bytes(directory):
    return b"".join(path.read_bytes()
                    for path in sorted((directory / "wal").glob("*")))


def _placement_fingerprint(placement):
    return {tid: placement.tenant_servers(tid)
            for tid in placement.tenant_ids}


def _comparable(registry):
    """Obs snapshot with wall-clock noise stripped: histogram counts
    stay (same operations -> same counts), durations do not."""
    snapshot = {}
    for name, data in registry.snapshot().items():
        if data.get("type") == "histogram":
            snapshot[name] = {"count": data["count"]}
        else:
            snapshot[name] = data
    return snapshot


def _drive(ops, gamma, segment_records, place, remove, update):
    alive = {}
    next_id = 0
    for op, load in ops:
        if op == "place" or not alive:
            place(Tenant(next_id, load))
            alive[next_id] = load
            next_id += 1
        elif op == "remove":
            tid = sorted(alive)[len(alive) // 2]
            remove(tid)
            del alive[tid]
        else:
            tid = sorted(alive)[len(alive) // 3]
            update(tid, load)
            alive[tid] = load


@given(ops=operations, gamma=st.integers(min_value=2, max_value=4),
       segment_records=st.integers(min_value=2, max_value=64))
@settings(max_examples=30, deadline=None)
def test_one_shard_fleet_is_the_single_controller(
        tmp_path_factory, ops, gamma, segment_records):
    base = tmp_path_factory.mktemp("differential")

    fleet_obs = MetricsRegistry()
    fleet = PlacementFleet(base / "fleet", shards=1, gamma=gamma,
                           obs=fleet_obs, fsync=FSYNC_NEVER,
                           segment_records=segment_records)
    _drive(ops, gamma, segment_records,
           place=fleet.place,
           remove=fleet.remove,
           update=fleet.update_load)
    fleet.checkpoint_all()
    fleet_placement = fleet.shards[0].placement
    fleet_fingerprint = _placement_fingerprint(fleet_placement)
    fleet.close()

    plain_obs = MetricsRegistry()
    store = DurableStore(base / "plain", fsync=FSYNC_NEVER,
                         segment_records=segment_records,
                         obs=plain_obs)
    algorithm = RobustBestFit(gamma=gamma)
    algorithm.attach_obs(plain_obs)
    algorithm.attach_store(store)
    _drive(ops, gamma, segment_records,
           place=algorithm.place,
           remove=algorithm.remove,
           update=algorithm.update_load)
    store.checkpoint_and_compact(algorithm.placement)
    plain_fingerprint = _placement_fingerprint(algorithm.placement)
    store.close()

    assert fleet_fingerprint == plain_fingerprint
    assert _wal_bytes(base / "fleet" / "shard-000") == \
        _wal_bytes(base / "plain")
    assert (base / "fleet" / "shard-000" /
            "checkpoint.json").read_bytes() == \
        (base / "plain" / "checkpoint.json").read_bytes()
    # The fleet layer adds fleet.* metrics on top; everything the
    # placement and store layers record must match exactly.
    fleet_metrics = {k: v for k, v in _comparable(fleet_obs).items()
                     if not k.startswith("fleet.")}
    assert fleet_metrics == _comparable(plain_obs)


@given(num_tenants=st.integers(min_value=1, max_value=60),
       shards=st.integers(min_value=1, max_value=9),
       policy=st.sampled_from(["hash", "least-loaded", "headroom"]),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       batch_size=st.integers(min_value=1, max_value=32),
       tenant_loads=st.lists(loads, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_routing_is_deterministic_under_a_fixed_seed(
        num_tenants, shards, policy, seed, batch_size, tenant_loads):
    tenants = [Tenant(tid, tenant_loads[tid % len(tenant_loads)])
               for tid in range(num_tenants)]

    def route():
        router = PlacementRouter(
            shards, policy=policy, seed=seed, batch_size=batch_size,
            load_budget=100.0 if policy == "headroom" else None)
        return [(s, t.tenant_id) for s, t in
                router.route_stream(tenants)]

    first, second = route(), route()
    assert second == first
    assert all(0 <= s < shards for s, _ in first)
    assert sorted(tid for _, tid in first) == \
        [t.tenant_id for t in tenants]


@given(num_tenants=st.integers(min_value=1, max_value=80),
       shards=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=2**16),
       batch_a=st.integers(min_value=1, max_value=40),
       batch_b=st.integers(min_value=1, max_value=40))
@settings(max_examples=40, deadline=None)
def test_hash_routing_ignores_batch_size(num_tenants, shards, seed,
                                         batch_a, batch_b):
    tenants = [Tenant(tid, 0.1) for tid in range(num_tenants)]

    def members(batch_size):
        router = PlacementRouter(shards, policy="hash", seed=seed,
                                 batch_size=batch_size)
        return sorted((s, t.tenant_id)
                      for s, t in router.route_stream(tenants))

    assert members(batch_a) == members(batch_b)
