"""Integration tests for the command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.cli as cli
from repro.sim.figures import Theorem2Result, Theorem2Row


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["bogus"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            cli.main([])

    @pytest.mark.parametrize("jobs", ["0", "-3"])
    def test_invalid_jobs_one_line_error_exit_1(self, jobs, capsys):
        # ReproError convention: one line on stderr, exit code 1,
        # never a traceback.
        assert cli.main(["sweep", "--jobs", jobs]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_invalid_tenants_one_line_error_exit_1(self, capsys):
        assert cli.main(["bench", "--tenants", "0"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_jobs_validated_before_any_command_runs(self, monkeypatch,
                                                    capsys):
        calls = []
        for name in list(cli._COMMANDS):
            monkeypatch.setitem(cli._COMMANDS, name,
                                lambda args, n=name: calls.append(n))
        assert cli.main(["all", "--jobs", "0"]) == 1
        assert calls == []


class TestDispatch:
    def test_theorem2_stub(self, monkeypatch, capsys):
        stub = Theorem2Result(rows_=[Theorem2Row(2, 21, 5 / 3, 4)])
        monkeypatch.setattr(cli, "theorem2", lambda: stub)
        assert cli.main(["theorem2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out
        assert "scale profile" in out

    def test_all_runs_every_command(self, monkeypatch, capsys):
        calls = []
        for name in list(cli._COMMANDS):
            monkeypatch.setitem(cli._COMMANDS, name,
                                lambda args, n=name: calls.append(n))
        assert cli.main(["all"]) == 0
        # Store-bound commands need --store and are not part of "all".
        assert sorted(calls) == \
            sorted(set(cli._COMMANDS) - cli._STORE_COMMANDS)

    def test_seed_forwarded(self, monkeypatch):
        seen = {}

        def fake_figure6(base_seed):
            seen["seed"] = base_seed

            class R:
                def __str__(self):
                    return "ok"
            return R()

        monkeypatch.setattr(cli, "figure6",
                            lambda base_seed: fake_figure6(base_seed))
        cli.main(["figure6", "--seed", "42"])
        assert seen["seed"] == 42


class TestCalibrateCommand:
    def test_calibrate_prints_model(self, monkeypatch, capsys):
        from repro.cluster.calibration import CalibrationResult
        from repro.workloads.loadmodel import BoundaryPoint, \
            LinearLoadModel

        stub = CalibrationResult(
            model=LinearLoadModel(delta=0.019, beta=0.012),
            boundary=[BoundaryPoint(1, 52), BoundaryPoint(4, 50)])
        monkeypatch.setattr(cli, "calibrate_load_model", lambda: stub)
        cli.main(["calibrate"])
        out = capsys.readouterr().out
        assert "C (max clients, one tenant) = 52" in out


class TestExtensionCommands:
    def test_churn_runs_quickly(self, monkeypatch, capsys):
        from repro.sim.churn import ChurnConfig, ChurnResult

        def fake_run_churn(factory, dist, config):
            algo = factory()
            return ChurnResult(algorithm=algo.name, config=config,
                               arrivals=10, departures=5)

        import repro.sim.churn as churn_mod
        monkeypatch.setattr(churn_mod, "run_churn", fake_run_churn)
        cli.main(["churn"])
        out = capsys.readouterr().out
        assert "Churn study" in out
        assert "cubefit" in out and "rfi" in out

    def test_metrics_renders_snapshot(self, capsys):
        """Acceptance: `repro metrics` renders a metrics snapshot for a
        churn run, plus the journal's replay counts."""
        assert cli.main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "placement.place" in out
        assert "placement.place.seconds" in out
        assert "churn.tenants" in out
        assert "journal:" in out and "place=" in out

    def test_metrics_csv_export(self, tmp_path, capsys):
        cli.main(["metrics", "--csv", str(tmp_path)])
        text = (tmp_path / "metrics.csv").read_text()
        assert text.splitlines()[0].startswith("metric,kind")

    def test_explain_without_trace(self, monkeypatch, capsys):
        # Shrink the default workload through the generate function.
        import repro.workloads.sequences as seq_mod
        original = seq_mod.generate_sequence

        def small(dist, n, seed=None, start_id=0):
            return original(dist, min(n, 120), seed=seed,
                            start_id=start_id)

        monkeypatch.setattr(seq_mod, "generate_sequence", small)
        cli.main(["explain"])
        out = capsys.readouterr().out
        assert "capacity split" in out
        assert "cubefit" in out and "rfi" in out

    def test_explain_with_trace(self, tmp_path, capsys):
        from repro.core.tenant import TenantSequence, make_tenants
        from repro.workloads.trace_io import save_trace

        path = tmp_path / "trace.json"
        save_trace(TenantSequence(tenants=make_tenants([0.4] * 30)),
                   path)
        cli.main(["explain", "--trace", str(path)])
        out = capsys.readouterr().out
        assert "loaded 30 tenants" in out

class TestErrorHandling:
    """ReproError from any subcommand: one line on stderr, exit 1,
    never a traceback."""

    def test_explain_missing_trace_file(self, tmp_path, capsys):
        code = cli.main(["explain", "--trace",
                         str(tmp_path / "missing.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro explain: error:" in captured.err
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_explain_corrupt_trace_file(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("{ not json")
        code = cli.main(["explain", "--trace", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro explain: error:" in captured.err
        assert "Traceback" not in captured.err

    def test_recover_missing_store(self, tmp_path, capsys):
        code = cli.main(["recover", "--store",
                         str(tmp_path / "no-such-store")])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro recover: error:" in captured.err
        assert "does not exist" in captured.err

    def test_recover_requires_store_flag(self, capsys):
        code = cli.main(["recover"])
        captured = capsys.readouterr()
        assert code == 1
        assert "requires --store" in captured.err

    def test_checkpoint_requires_store_flag(self, capsys):
        code = cli.main(["checkpoint"])
        captured = capsys.readouterr()
        assert code == 1
        assert "requires --store" in captured.err

    def test_recover_corrupt_wal(self, tmp_path, capsys):
        from repro.algorithms.naive import RobustBestFit
        from repro.core.tenant import Tenant
        from repro.store import DurableStore

        store = DurableStore(tmp_path / "st")
        algo = RobustBestFit(gamma=2)
        algo.attach_store(store)
        for i in range(6):
            algo.place(Tenant(i, 0.2))
        store.close()
        segment = sorted((tmp_path / "st" / "wal").iterdir())[0]
        lines = segment.read_text().splitlines(keepends=True)
        lines[1] = "@@@ definitely not json @@@\n"
        segment.write_text("".join(lines))
        code = cli.main(["recover", "--store", str(tmp_path / "st")])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro recover: error:" in captured.err
        assert "Traceback" not in captured.err


class TestChaosCommand:
    """`repro chaos` regression: conformant runs exit 0 with a repro
    line; bad arguments follow the one-line-stderr/exit-1 convention."""

    def test_small_run_is_conformant(self, capsys):
        code = cli.main(["chaos", "--faults",
                         "algo.place,store.wal.torn_tail",
                         "--ops", "40", "--seed", "3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "CONFORMANT" in captured.out
        assert "reproduce: repro chaos --seed 3" in captured.out

    def test_bogus_fault_name_lists_catalogue(self, capsys):
        from repro.faults import CATALOG
        code = cli.main(["chaos", "--faults", "store.wal.tornn_tail"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro chaos: error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err
        # The error names the catalogue so a typo is self-correcting.
        for name in CATALOG:
            assert name in captured.err

    def test_invalid_gamma_one_line_error(self, capsys):
        code = cli.main(["chaos", "--gamma", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro chaos: error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_schedule_and_faults_mutually_exclusive(self, capsys):
        code = cli.main(["chaos", "--faults", "algo.place",
                         "--schedule", "3:algo.place=raise"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro chaos: error:")
        assert "mutually exclusive" in captured.err

    def test_malformed_schedule_one_line_error(self, capsys):
        code = cli.main(["chaos", "--schedule", "not-a-schedule"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro chaos: error:")
        assert "Traceback" not in captured.err

    def test_failure_prints_repro_line_on_stderr(self, monkeypatch,
                                                 capsys):
        import repro.sim.chaos as chaos_mod

        real = chaos_mod.run_chaos_soak

        def sabotaged(factory, store_dir, config, obs=None):
            report = real(factory, store_dir, config, obs=obs)
            report.failures.append("synthetic conformance failure")
            return report

        monkeypatch.setattr(cli, "run_chaos_soak", sabotaged,
                            raising=False)
        monkeypatch.setattr(chaos_mod, "run_chaos_soak", sabotaged)
        code = cli.main(["chaos", "--faults", "algo.place",
                        "--ops", "30"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL: synthetic conformance failure" in captured.err
        err_tail = captured.err.strip().splitlines()[-1]
        assert "reproduce: repro chaos --seed 0" in err_tail


class TestStoreCommands:
    @staticmethod
    def _populated_store(tmp_path):
        from repro.algorithms.naive import RobustBestFit
        from repro.sim.soak import SoakConfig, run_soak
        from repro.store import DurableStore

        store = DurableStore(tmp_path / "st", segment_records=16)
        run_soak(lambda: RobustBestFit(gamma=2),
                 SoakConfig(operations=50, seed=4),
                 store=store, checkpoint_every=20)
        store.close()
        return tmp_path / "st"

    def test_recover_prints_summary(self, tmp_path, capsys):
        directory = self._populated_store(tmp_path)
        assert cli.main(["recover", "--store", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "recovered:" in out
        assert "audit:     OK" in out
        assert "bestfit" in out

    def test_checkpoint_writes_and_compacts(self, tmp_path, capsys):
        directory = self._populated_store(tmp_path)
        assert cli.main(["checkpoint", "--store", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint written:" in out
        assert (directory / "checkpoint.json").exists()
        # After a full-coverage checkpoint, recovery replays nothing.
        from repro.store import recover
        assert recover(directory).records_replayed == 0

    def test_soak_with_store(self, monkeypatch, tmp_path, capsys):
        import repro.sim.soak as soak_mod
        original = soak_mod.SoakConfig

        def small(operations=400, **kw):
            return original(operations=40, **kw)

        monkeypatch.setattr(soak_mod, "SoakConfig", small)
        assert cli.main(["soak", "--store", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "durable store" in out
        assert (tmp_path / "s" / "cubefit" / "wal").is_dir()
        assert (tmp_path / "s" / "rfi" / "wal").is_dir()

    def test_scaling_prints_savings_evolution(self, monkeypatch,
                                              capsys):
        import repro.sim.timing as timing_mod
        original = timing_mod.scaling_study

        def small(factories, dist, counts, seed=0):
            return original(factories, dist, [60, 200], seed=seed)

        monkeypatch.setattr(timing_mod, "scaling_study", small)
        cli.main(["scaling"])
        out = capsys.readouterr().out
        assert "Scaling study" in out
        assert "savings over RFI by scale" in out


class TestFleetCommands:
    """`repro fleet-soak` / `fleet-status` regression: the one-line
    stderr/exit-1 convention for bad arguments, and the end-to-end
    soak-then-status round trip on a real fleet root."""

    def test_fleet_soak_requires_store_flag(self, capsys):
        assert cli.main(["fleet-soak"]) == 1
        captured = capsys.readouterr()
        assert "requires --store" in captured.err
        assert "Traceback" not in captured.err

    def test_fleet_status_requires_store_flag(self, capsys):
        assert cli.main(["fleet-status"]) == 1
        assert "requires --store" in capsys.readouterr().err

    def test_fleet_status_missing_root_is_one_line(self, tmp_path,
                                                   capsys):
        code = cli.main(["fleet-status", "--store",
                         str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro fleet-status: error:" in captured.err
        assert "not a fleet root" in captured.err
        assert "Traceback" not in captured.err

    def test_fleet_soak_rejects_bad_geometry(self, tmp_path, capsys):
        code = cli.main(["fleet-soak", "--store", str(tmp_path / "f"),
                         "--shards", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro fleet-soak: error:" in captured.err

    def test_fleet_soak_then_status_round_trip(self, tmp_path, capsys):
        root = tmp_path / "fleet"
        assert cli.main(["fleet-soak", "--store", str(root),
                         "--tenants", "240", "--shards", "2",
                         "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "SIGKILL-drilled" in out
        assert "p99" in out
        assert cli.main(["fleet-status", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "geometry:   2 shard(s)" in out
        assert "audits all clean" in out


class TestOptGapCommand:
    """`repro opt-gap` regression: gap tables on two distributions, the
    one-line-stderr/exit-1 convention for bad arguments, certified
    [LB, UB] intervals under --budget exhaustion, and a repro line that
    round-trips through the parser."""

    def test_reports_gaps_for_default_heuristics(self, capsys):
        assert cli.main(["opt-gap"]) == 0
        out = capsys.readouterr().out
        assert "optimality gap vs exact oracle" in out
        for name in ("cubefit", "rfi", "firstfit"):
            assert f"{name} gap" in out
        # Both workload families appear.
        assert "uniform(0,0.6]" in out
        assert "zipf(3)" in out
        assert "reproduce: repro opt-gap" in out

    def test_budget_exhaustion_prints_certified_interval(self, capsys):
        assert cli.main(["opt-gap", "--tenants", "14",
                         "--runs", "1", "--budget", "3"]) == 0
        out = capsys.readouterr().out
        assert "[" in out.split("optimum")[1]  # interval in the table
        assert "hit the node budget" in out
        assert "certified" in out

    def test_repro_line_round_trips(self, capsys):
        assert cli.main(["opt-gap", "--tenants", "7", "--runs", "2",
                         "--seed", "3"]) == 0
        first = capsys.readouterr().out
        line = next(l for l in first.splitlines()
                    if l.startswith("reproduce: "))
        argv = line.removeprefix("reproduce: repro ").split()
        assert cli.main(argv) == 0
        second = capsys.readouterr().out

        def table_of(text):
            lines = text.splitlines()
            start = next(i for i, l in enumerate(lines)
                         if "optimality gap" in l)
            end = next(i for i, l in enumerate(lines)
                       if l.startswith("reproduce: "))
            return lines[start:end + 1]

        assert table_of(first) == table_of(second)

    def test_bad_budget_one_line_error(self, capsys):
        assert cli.main(["opt-gap", "--budget", "0"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro opt-gap: error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_bad_runs_one_line_error(self, capsys):
        assert cli.main(["opt-gap", "--runs", "0"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro opt-gap: error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_oversized_instance_one_line_error(self, capsys):
        assert cli.main(["opt-gap", "--tenants", "65"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro opt-gap: error:")
        assert "exact optimum" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_bad_gamma_one_line_error(self, capsys):
        assert cli.main(["opt-gap", "--gamma", "0"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro opt-gap: error:")

    def test_csv_export(self, tmp_path, capsys):
        assert cli.main(["opt-gap", "--runs", "1", "--csv",
                         str(tmp_path)]) == 0
        text = (tmp_path / "opt_gap.csv").read_text()
        assert text.splitlines()[0].startswith("distribution,seed")


class TestSweepCommand:
    def test_sweep_includes_sla_curve(self, capsys):
        assert cli.main(["sweep", "--tenants", "60"]) == 0
        out = capsys.readouterr().out
        assert "sla_target sensitivity" in out
        assert "cheapest robust point" in out

    def test_sweep_sla_csv_export(self, tmp_path, capsys):
        assert cli.main(["sweep", "--tenants", "60", "--csv",
                         str(tmp_path)]) == 0
        assert (tmp_path / "sweep_sla.csv").exists()


class TestKeyboardInterrupt:
    """Ctrl-C during any subcommand: one line on stderr, exit 130,
    never a traceback — the regression where a KeyboardInterrupt
    escaped main() as a stack trace."""

    def test_interrupt_exits_130_one_line(self, monkeypatch, capsys):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "metrics", interrupted)
        assert cli.main(["metrics"]) == 130
        captured = capsys.readouterr()
        assert captured.err.strip() == "repro metrics: interrupted"
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_interrupt_stops_an_all_run(self, monkeypatch, capsys):
        calls = []

        def record(args, n):
            calls.append(n)
            if len(calls) == 2:
                raise KeyboardInterrupt

        for name in list(cli._COMMANDS):
            monkeypatch.setitem(cli._COMMANDS, name,
                                lambda args, n=name: record(args, n))
        assert cli.main(["all"]) == 130
        assert len(calls) == 2  # nothing ran after the interrupt

    def test_interrupted_soak_closes_its_store(self, monkeypatch,
                                               tmp_path, capsys):
        """The soak's durable store is released through its
        try/finally even when the run is interrupted mid-flight."""
        import repro.sim.soak as soak_mod

        def interrupted_soak(factory, config, store=None,
                             checkpoint_every=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(soak_mod, "run_soak", interrupted_soak)
        assert cli.main(["soak", "--store", str(tmp_path / "s")]) == 130
        # The WAL handle was closed: reopening the store (which locks
        # nothing but re-scans segments) works and sees no records.
        from repro.store import DurableStore
        with DurableStore(tmp_path / "s" / "cubefit") as store:
            assert store.wal.next_seq == 0
        captured = capsys.readouterr()
        assert "repro soak: interrupted" in captured.err


class TestBrokenPipe:
    """Downstream hanging up mid-output (`repro serve-send stats |
    head`) must not traceback: the conventional 128+SIGPIPE exit and a
    silent stderr, with stdout reopened on devnull so the interpreter's
    shutdown flush stays quiet too."""

    # main() rewires the process's stdout descriptor on the way out,
    # which would wreck pytest's own capture — so the handler runs in
    # a scratch interpreter and reports through stderr.
    _SCRIPT = """\
import sys

import repro.cli as cli


def hung_up(args):
    raise BrokenPipeError


cli._COMMANDS["metrics"] = hung_up
print(f"rc={cli.main(['metrics'])}", file=sys.stderr)
"""

    # The command itself succeeds, and the pipe dies just before the
    # trailing `[name: 0.0s]` timing line — `repro opt-gap | grep -q`
    # hits exactly this once grep has matched and hung up.  The
    # timing print runs inside the handler's try block, so this must
    # still be the quiet 141 exit, not a traceback.
    _TIMING_SCRIPT = """\
import sys

import repro.cli as cli

real = sys.stdout


class DeadPipe:
    def write(self, s):
        raise BrokenPipeError

    def flush(self):
        pass

    def fileno(self):
        return real.fileno()


def hang_up_after(args):
    sys.stdout = DeadPipe()


cli._COMMANDS["metrics"] = hang_up_after
print(f"rc={cli.main(['metrics'])}", file=sys.stderr)
"""

    @staticmethod
    def _run_scratch(script):
        src_root = str(Path(cli.__file__).resolve().parents[1])
        env = dict(os.environ)
        parts = [src_root] + [p for p in
                              env.get("PYTHONPATH", "").split(
                                  os.pathsep) if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, env=env, timeout=60)

    def test_broken_pipe_exits_141_quietly(self):
        proc = self._run_scratch(self._SCRIPT)
        # The interpreter exits cleanly (shutdown flush lands on
        # devnull, not the dead pipe) and stderr carries nothing but
        # our marker: no traceback, no error line.
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.decode().strip() == "rc=141"

    def test_broken_pipe_on_timing_line_exits_141_quietly(self):
        proc = self._run_scratch(self._TIMING_SCRIPT)
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.decode().strip() == "rc=141"


class TestServeCommands:
    def test_serve_requires_store_and_socket(self, capsys):
        assert cli.main(["serve"]) == 1
        assert "requires --store" in capsys.readouterr().err
        assert cli.main(["serve", "--store", "/tmp/x"]) == 1
        assert "requires --socket" in capsys.readouterr().err

    def test_serve_send_requires_socket(self, capsys):
        assert cli.main(["serve-send"]) == 1
        assert "requires --socket" in capsys.readouterr().err

    def test_serve_send_unknown_verb(self, tmp_path, capsys):
        code = cli.main(["serve-send", "--socket",
                         str(tmp_path / "s.sock"), "--verb", "explode"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown verb" in captured.err

    def test_serve_send_place_requires_tenant_and_load(self, tmp_path,
                                                       capsys):
        base = ["serve-send", "--socket", str(tmp_path / "s.sock"),
                "--verb", "place"]
        assert cli.main(base) == 1
        assert "requires --tenant" in capsys.readouterr().err
        assert cli.main(base + ["--tenant", "1"]) == 1
        assert "requires --load" in capsys.readouterr().err

    def test_serve_send_against_live_server(self, tmp_path, capsys):
        from repro.serve import PlacementServer, ServeConfig

        server = PlacementServer(tmp_path / "store",
                                 tmp_path / "serve.sock",
                                 ServeConfig(crash_mode="abort"))
        server.start()
        try:
            sock = str(tmp_path / "serve.sock")
            assert cli.main(["serve-send", "--socket", sock,
                             "--verb", "place", "--tenant", "1",
                             "--load", "0.5"]) == 0
            out = capsys.readouterr().out
            assert '"servers"' in out
            assert cli.main(["serve-send", "--socket", sock,
                             "--verb", "stats"]) == 0
            assert '"tenants": 1' in capsys.readouterr().out
        finally:
            server.stop()

    def test_serve_send_connection_refused_is_one_line(self, tmp_path,
                                                       capsys):
        code = cli.main(["serve-send", "--socket",
                         str(tmp_path / "nobody.sock")])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro serve-send: error:" in captured.err
        assert "Traceback" not in captured.err
