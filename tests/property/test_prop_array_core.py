"""Differential property: the array core changes nothing but speed.

The ``REPRO_ARRAY_CORE`` switch selects between two engines for the
candidate index and the feasibility probe path: the struct-of-arrays
core (:mod:`repro.core.arrays`, the default) and the PR 4 scalar
engine preserved verbatim behind the off-switch.  The core is only
sound if a whole run — arrivals, departures, elastic resizes, every
candidate query and every screened probe — is *bit-identical* under
both engines: same replica-to-server assignments, same server counts,
and the same ``feasibility.screened`` / ``feasibility.exact``
accounting.  These tests replay random workloads and random probes
under both settings and demand exactly that, including loads nudged
onto the ``1e-9`` guard band where a single ULP of drift would flip a
decision.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.base import ServerIndex, robust_after_placement
from repro.algorithms.naive import (RobustBestFit, RobustFirstFit,
                                    RobustNextFit)
from repro.algorithms.rfi import RFI
from repro.core import arrays
from repro.core.arrays import SCREEN_MARGIN
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.errors import CapacityError
from repro.obs import MetricsRegistry

MAX_SERVERS = 8

FACTORIES = {
    "bestfit": RobustBestFit,
    "firstfit": RobustFirstFit,
    "nextfit": RobustNextFit,
    "rfi": RFI,
}


def _draw_ops(data, n_min=4, n_max=24):
    """A reproducible interleaving of place / remove / resize ops."""
    ops = []
    live = []
    next_tid = 0
    for step in range(data.draw(st.integers(n_min, n_max),
                                label="n_ops")):
        kinds = ["place", "place"]
        if live:
            kinds += ["remove", "resize"]
        kind = data.draw(st.sampled_from(kinds), label=f"op[{step}]")
        if kind == "place":
            load = data.draw(st.floats(0.01, 0.9),
                             label=f"load[{step}]")
            ops.append(("place", next_tid, load))
            live.append(next_tid)
            next_tid += 1
        elif kind == "remove":
            tid = data.draw(st.sampled_from(live),
                            label=f"victim[{step}]")
            live.remove(tid)
            ops.append(("remove", tid, None))
        else:
            tid = data.draw(st.sampled_from(live),
                            label=f"resized[{step}]")
            load = data.draw(st.floats(0.01, 0.9),
                             label=f"newload[{step}]")
            ops.append(("resize", tid, load))
    return ops


def _replay(name, gamma, ops, core_on):
    """Run one algorithm over ``ops``; return its observable outcome."""
    with arrays.overridden(core_on):
        algo = FACTORIES[name](gamma=gamma)
        registry = MetricsRegistry()
        algo.attach_obs(registry)
        for kind, tid, load in ops:
            if kind == "place":
                algo.place(Tenant(tid, load))
            elif kind == "remove":
                algo.remove(tid)
            else:
                algo.update_load(tid, load)
        placement = algo.placement
        fingerprint = sorted(
            (tid, index, sid)
            for tid in placement.tenant_ids
            for index, sid in placement.tenant_servers(tid).items())
        snapshot = registry.snapshot()
        counters = {
            key: snapshot.get(key, {}).get("value", 0)
            for key in ("feasibility.screened", "feasibility.exact")}
        return fingerprint, placement.num_servers, counters


@given(name=st.sampled_from(sorted(FACTORIES)),
       gamma=st.integers(1, 3), data=st.data())
@settings(max_examples=40, deadline=None)
def test_interleaved_workload_is_engine_invariant(name, gamma, data):
    """Same ops, both engines: identical placements, server counts and
    ``feasibility.*`` accounting — across gammas including 1 (a zero
    failure budget) and all the scalar baselines plus RFI."""
    if name == "rfi" and gamma < 2:
        gamma = 2  # RFI's one-failure reserve needs replication
    ops = _draw_ops(data)
    outcome_on = _replay(name, gamma, ops, core_on=True)
    outcome_off = _replay(name, gamma, ops, core_on=False)
    assert outcome_on == outcome_off, (
        f"engines diverged for {name} gamma={gamma}: "
        f"on={outcome_on} off={outcome_off}")


def _random_placement(data, gamma):
    """Grow a placement through a drawn interleaving of mutations
    (mirrors the feasibility-screen property suite)."""
    ps = PlacementState(gamma=gamma)
    for _ in range(gamma + 1):
        ps.open_server()
    next_tid = 0
    for step in range(data.draw(st.integers(3, 20), label="n_grow")):
        op = data.draw(
            st.sampled_from(["place_tenant", "partial", "remove",
                             "open_server"]),
            label=f"grow[{step}]")
        if op == "open_server" and ps.num_servers < MAX_SERVERS:
            ps.open_server()
        elif op == "place_tenant":
            load = data.draw(st.floats(0.01, 0.8), label="load")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                ps.place_tenant(Tenant(next_tid, load), perm[:gamma])
            except CapacityError:
                continue
            next_tid += 1
        elif op == "partial":
            load = data.draw(st.floats(0.01, 0.8), label="load")
            tenant = Tenant(next_tid, load)
            count = data.draw(st.integers(1, gamma), label="count")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                for replica, sid in zip(tenant.replicas(gamma)[:count],
                                        perm):
                    ps.place(replica, sid)
            except CapacityError:
                pass
            next_tid += 1
        elif op == "remove" and ps.tenant_ids:
            victim = data.draw(st.sampled_from(ps.tenant_ids),
                               label="victim")
            ps.remove_tenant(victim)
    return ps


def _indexed(ps, failures):
    """Register an array core for ``failures`` and make it clean, so
    vector-path probes actually read the vectors."""
    with arrays.overridden(True):
        index = ServerIndex(ps, failures=failures)
        for sid in ps.server_ids:
            index.track(sid)
        index.candidates(min_avail=0.0)  # sync: drain the tracker
    return index


def _differential_probe(ps, reg_on, reg_off, *args, **kwargs):
    with arrays.overridden(True):
        on = robust_after_placement(*((ps,) + args), obs=reg_on,
                                    **kwargs)
    with arrays.overridden(False):
        off = robust_after_placement(*((ps,) + args), obs=reg_off,
                                     **kwargs)
    assert on == off, (
        f"probe diverged: args={args} kwargs={kwargs} "
        f"vector={on} scalar={off}")
    return on


@given(gamma=st.integers(2, 4), data=st.data())
@settings(max_examples=50, deadline=None)
def test_probe_decisions_and_accounting_match(gamma, data):
    """Every probe answers identically through the vectors and through
    the dict path, and both modes charge the same counter."""
    ps = _random_placement(data, gamma)
    failures = gamma - 1
    _indexed(ps, failures)
    reg_on, reg_off = MetricsRegistry(), MetricsRegistry()
    n_probes = data.draw(st.integers(1, 10), label="n_probes")
    for probe in range(n_probes):
        replica_load = data.draw(st.floats(0.001, 1.2),
                                 label=f"replica_load[{probe}]")
        perm = data.draw(st.permutations(ps.server_ids),
                         label=f"servers[{probe}]")
        n_chosen = data.draw(st.integers(0, min(gamma - 1,
                                                len(perm) - 1)),
                             label=f"n_chosen[{probe}]")
        # Mostly probe the registered failure budget (the vector path);
        # sometimes another budget (dict path in both modes).
        f = data.draw(st.sampled_from([failures, failures, failures,
                                       0, gamma]),
                      label=f"f[{probe}]")
        future = data.draw(st.integers(0, gamma - 1 - n_chosen),
                           label=f"future[{probe}]")
        _differential_probe(
            ps, reg_on, reg_off, perm[0], replica_load,
            perm[1:1 + n_chosen], f,
            extra_reserve=data.draw(st.sampled_from([0.0, 0.05, 0.3]),
                                    label=f"reserve[{probe}]"),
            future_siblings=future)
    assert reg_on.snapshot() == reg_off.snapshot()
    snapshot = reg_on.snapshot()
    counted = snapshot.get("feasibility.screened", {}).get("value", 0) \
        + snapshot.get("feasibility.exact", {}).get("value", 0)
    assert counted == n_probes


@given(gamma=st.integers(2, 3), data=st.data())
@settings(max_examples=30, deadline=None)
def test_guard_band_boundaries_are_engine_invariant(gamma, data):
    """Loads nudged onto the screen's ``1e-9`` guard band: the one
    place a single ULP of float drift between the engines would
    surface as a flipped decision."""
    ps = _random_placement(data, gamma)
    failures = gamma - 1
    _indexed(ps, failures)
    reg_on, reg_off = MetricsRegistry(), MetricsRegistry()
    for sid in ps.server_ids:
        server = ps.server(sid)
        cached = ps.worst_failover_load(sid, failures)
        headroom = server.capacity - server.load - cached
        for nudge in (-1e-6, -1e-12, -SCREEN_MARGIN, 0.0,
                      SCREEN_MARGIN, 1e-12, 1e-6):
            replica_load = headroom + nudge
            if replica_load <= 0.0:
                continue
            _differential_probe(ps, reg_on, reg_off, sid,
                                replica_load, (), failures)
    assert reg_on.snapshot() == reg_off.snapshot()
