"""Benchmark E6 — placement throughput and utilization statistics.

The paper's simulator "captures statistics including how many servers
were used, amount of time each placement algorithm needs to consolidate
tenants onto servers, and the average server utilization."  This bench
measures consolidation wall time per algorithm on a fixed 2,000-tenant
uniform sequence and reports servers/utilization as extra_info.
"""

import pytest

from repro.algorithms.naive import (RobustBestFit, RobustFirstFit,
                                    RobustNextFit)
from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence

N_TENANTS = 2_000

FACTORIES = {
    "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
    "rfi": lambda: RFI(gamma=2),
    "bestfit": lambda: RobustBestFit(gamma=2),
    "firstfit": lambda: RobustFirstFit(gamma=2),
    "nextfit": lambda: RobustNextFit(gamma=2),
}


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(UniformLoad(0.6), N_TENANTS, seed=0)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_consolidation_speed(benchmark, sequence, name):
    factory = FACTORIES[name]

    def run():
        algo = factory()
        algo.consolidate(sequence)
        return algo

    algo = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["servers"] = algo.placement.num_servers
    benchmark.extra_info["utilization"] = round(
        algo.placement.utilization(), 4)
    benchmark.extra_info["tenants_per_second"] = round(
        N_TENANTS / max(benchmark.stats["mean"], 1e-9))


def test_cubefit_scales_linearly(benchmark):
    """CubeFit's per-tenant cost must not blow up with sequence length."""
    seq = generate_sequence(UniformLoad(0.6), 4 * N_TENANTS, seed=1)

    def run():
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(seq)
        return algo

    algo = benchmark.pedantic(run, rounds=1, iterations=1)
    assert algo.placement.num_tenants == 4 * N_TENANTS
