"""Append-only event journal with JSON-lines export and replay.

Every instrumented operation (place, remove, resize, recovery move,
repack migration, ...) appends one :class:`JournalEvent`; the journal
can be exported as JSON lines, read back, and *replayed* into an
aggregate summary.  Replay is the audit path for end-of-run scalars: a
soak run's reported operation counts must equal what its journal
replays to, or the report and the history disagree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..errors import ConfigurationError

PathLike = Union[str, Path]


def _jsonable(value):
    """Best-effort conversion of numpy scalars et al. for json.dumps."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(
        f"journal field of type {type(value).__name__} is not "
        f"JSON-serializable: {value!r}")


@dataclass(frozen=True)
class JournalEvent:
    """One recorded event: a sequence number, a type, and fields."""

    seq: int
    type: str
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "type": self.type,
                           "data": self.data},
                          default=_jsonable, sort_keys=True)


class EventJournal:
    """An in-memory, append-only sequence of events.

    Events receive monotonically increasing sequence numbers; the
    journal never mutates or reorders past events, so an export taken
    at any time is a prefix of every later export.
    """

    def __init__(self) -> None:
        self._events: List[JournalEvent] = []

    def emit(self, event_type: str, **fields) -> JournalEvent:
        """Append one event and return it."""
        if not event_type:
            raise ConfigurationError("event type must be non-empty")
        event = JournalEvent(seq=len(self._events), type=event_type,
                             data=fields)
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> JournalEvent:
        return self._events[index]

    def events(self, event_type: Optional[str] = None) -> List[JournalEvent]:
        """All events, optionally filtered by type."""
        if event_type is None:
            return list(self._events)
        return [e for e in self._events if e.type == event_type]

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line (trailing newline when non-empty)."""
        if not self._events:
            return ""
        return "\n".join(e.to_json() for e in self._events) + "\n"

    def write(self, path: PathLike) -> None:
        Path(path).write_text(self.to_jsonl())

    def replay(self) -> "ReplaySummary":
        return replay(self._events)


def read_journal(path: PathLike) -> List[JournalEvent]:
    """Load a journal previously written with :meth:`EventJournal.write`."""
    return list(iter_jsonl(Path(path).read_text()))


def iter_jsonl(text: str) -> Iterator[JournalEvent]:
    """Parse JSON-lines text into events (blank lines ignored)."""
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"journal line {line_number} is not valid JSON: {exc}"
            ) from None
        yield JournalEvent(seq=int(raw["seq"]), type=str(raw["type"]),
                           data=dict(raw.get("data", {})))


@dataclass
class ReplaySummary:
    """Aggregate of a journal replay."""

    total: int = 0
    counts: Dict[str, int] = field(default_factory=dict)

    def count(self, event_type: str) -> int:
        return self.counts.get(event_type, 0)


def replay(events: Iterable[JournalEvent]) -> ReplaySummary:
    """Re-read a (possibly re-loaded) event stream into per-type counts.

    Sequence numbers must be strictly increasing — a shuffled or
    truncated-in-the-middle journal is detected rather than silently
    summarized.
    """
    summary = ReplaySummary()
    last_seq = -1
    for event in events:
        if event.seq <= last_seq:
            raise ConfigurationError(
                f"journal replay: sequence {event.seq} after "
                f"{last_seq}; stream is reordered or corrupt")
        last_seq = event.seq
        summary.total += 1
        summary.counts[event.type] = summary.counts.get(event.type, 0) + 1
    return summary
