"""Property differential: batched admission is invisible.

The tentpole claim of the batch-vectorized admission pipeline:
``place_batch`` / batched ``consolidate`` produce **bit-identical**
results to the plain sequential loop at every chunk length — same
packings, same server counts, same ``feasibility.screened`` /
``feasibility.exact`` counters, same per-placement obs journals.  The
batch window only changes *when* the index syncs its array core and
how probe verdicts are amortized (quantized screen cache), never what
any placement decides.

Drawn over random workloads, gammas 1..4, every algorithm in the
bench lineup, chunk lengths {1, 7, 64, whole-stream}, loads nudged to
within +/-1e-12 of screen-band edges (the guard-band regime where an
unsound cache would flip a verdict), and both ``REPRO_ARRAY_CORE``
settings.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.naive import (RobustBestFit, RobustFirstFit,
                                    RobustNextFit)
from repro.algorithms.rfi import RFI
from repro.core import arrays
from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant
from repro.obs import EventJournal, MetricsRegistry

FACTORIES = {
    "bestfit": lambda gamma: RobustBestFit(gamma=gamma),
    "firstfit": lambda gamma: RobustFirstFit(gamma=gamma),
    "nextfit": lambda gamma: RobustNextFit(gamma=gamma),
    "rfi": lambda gamma: RFI(gamma=max(gamma, 2)),
    "cubefit": lambda gamma: CubeFit(gamma=max(gamma, 2),
                                     num_classes=4),
}

#: Chunk lengths the issue calls out: degenerate, odd, a full default
#: screen window, and "whole stream" (larger than any drawn workload).
BATCH_SIZES = (1, 7, 64, 10**6)

loads = st.floats(min_value=0.005, max_value=0.95, allow_nan=False)

#: Loads within +/-1e-12 of a 1/128 screen-band boundary — the
#: quantized cache's band edges, where an unsound bound would first
#: disagree with the scalar probe.
band_edge_loads = st.tuples(
    st.integers(min_value=1, max_value=120),
    st.sampled_from((-1e-12, 0.0, 1e-12)),
).map(lambda kn: kn[0] / 128.0 + kn[1])

workloads = st.lists(st.one_of(loads, band_edge_loads),
                     min_size=1, max_size=40)


def _tenants(load_list):
    return [Tenant(tenant_id=i, load=min(max(load, 1e-6), 1.0))
            for i, load in enumerate(load_list)]


def _packing(algo):
    placement = algo.placement
    return json.dumps(
        sorted((tid, sorted(placement.tenant_servers(tid).items()))
               for tid in placement.tenant_ids))


def _counters(registry):
    snapshot = registry.snapshot()
    return {name: snapshot[name]["value"]
            for name in ("feasibility.screened", "feasibility.exact")
            if name in snapshot}


def _journal(journal):
    """Per-placement decision events, wall-clock noise stripped."""
    events = []
    for event in journal.events():
        data = {k: v for k, v in sorted(event.data.items())
                if k not in ("seconds", "ts")}
        events.append((event.type,
                       json.dumps(data, sort_keys=True, default=list)))
    return events


def _consolidate(name, gamma, tenants, batch_size, array_core):
    journal = EventJournal()
    registry = MetricsRegistry(journal=journal)
    with arrays.overridden(array_core):
        algo = FACTORIES[name](gamma)
        algo.attach_obs(registry)
        algo.consolidate(tenants, batch_size=batch_size)
    return (_packing(algo), algo.placement.num_servers,
            _counters(registry), _journal(journal))


@pytest.mark.parametrize("array_core", [True, False])
@pytest.mark.parametrize("name", sorted(FACTORIES))
@given(load_list=workloads, gamma=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_place_batch_is_bit_identical_to_sequential(
        name, array_core, load_list, gamma):
    tenants = _tenants(load_list)
    sequential = _consolidate(name, gamma, tenants, batch_size=1,
                              array_core=array_core)
    for batch_size in BATCH_SIZES[1:]:
        batched = _consolidate(name, gamma, tenants,
                               batch_size=batch_size,
                               array_core=array_core)
        assert batched == sequential, (
            f"{name} gamma={gamma} batch={batch_size} "
            f"array_core={array_core} diverged from sequential")


def test_place_batch_entry_point_matches_place():
    """``place_batch`` itself (not just consolidate) equals a place loop."""
    tenants = _tenants([0.3, 0.41, 0.11, 0.64, 0.25, 0.3, 0.07])
    a = RobustBestFit(gamma=2)
    servers_batch = a.place_batch(tenants)
    b = RobustBestFit(gamma=2)
    servers_seq = [b.place(t) for t in tenants]
    assert servers_batch == servers_seq
    assert _packing(a) == _packing(b)
