"""Property-based tests for recovery, offline solvers, and churn."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms.offline import (OfflineFirstFitDecreasing,
                                      optimal_servers)
from repro.core.cubefit import CubeFit
from repro.core.recovery import RecoveryPlanner
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import audit

small_loads = st.lists(
    st.floats(min_value=0.05, max_value=0.95,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=6)


@given(loads=small_loads)
@settings(max_examples=25, deadline=None)
def test_optimum_never_above_ffd(loads):
    """The exact optimum lower-bounds every heuristic."""
    opt = optimal_servers(loads, gamma=2)
    ffd = OfflineFirstFitDecreasing(gamma=2)
    ffd.consolidate(make_tenants(loads))
    assert opt <= ffd.placement.num_servers
    assert audit(ffd.placement).ok


@given(loads=small_loads)
@settings(max_examples=15, deadline=None)
def test_optimum_packing_budget_monotone(loads):
    """A larger failure budget can never need fewer servers."""
    relaxed = optimal_servers(loads, gamma=2, failures=0)
    robust = optimal_servers(loads, gamma=2, failures=1)
    assert relaxed <= robust


@given(loads=st.lists(st.floats(min_value=0.02, max_value=0.8),
                      min_size=5, max_size=40),
       n_failures=st.integers(min_value=1, max_value=2),
       seed=st.integers(min_value=0, max_value=10))
@settings(max_examples=25, deadline=None)
def test_recovery_restores_invariants(loads, n_failures, seed):
    """After failing any servers and re-replicating: the audit passes,
    every tenant is back at gamma replicas, and nothing lives on the
    failed servers."""
    algo = CubeFit(gamma=2, num_classes=5)
    algo.consolidate(make_tenants(loads))
    placement = algo.placement
    nonempty = [s.server_id for s in placement if len(s) > 0]
    rng = np.random.default_rng(seed)
    count = min(n_failures, len(nonempty))
    victims = [int(v) for v in
               rng.choice(nonempty, size=count, replace=False)]
    RecoveryPlanner(placement).recover(victims)
    assert audit(placement).ok
    for tid in placement.tenant_ids:
        homes = placement.tenant_servers(tid)
        assert len(homes) == 2
        assert not set(homes.values()) & set(victims)


churn_ops = st.lists(
    st.tuples(st.booleans(),
              st.floats(min_value=0.02, max_value=1.0)),
    min_size=1, max_size=60)


@given(ops=churn_ops, gamma=st.sampled_from([2, 3]))
@settings(max_examples=25, deadline=None)
def test_cubefit_robust_under_arbitrary_churn(ops, gamma):
    """Interleaved arrivals/departures (with slot recycling) never
    break Theorem 1."""
    algo = CubeFit(gamma=gamma, num_classes=5)
    alive = []
    next_id = 0
    for is_departure, load in ops:
        if is_departure and alive:
            algo.remove(alive.pop(0))
        else:
            algo.place(Tenant(next_id, load))
            alive.append(next_id)
            next_id += 1
    assert audit(algo.placement).ok
    assert algo.placement.num_tenants == len(alive)
