"""Unit tests for the observability primitives (repro.obs)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (EventJournal, MetricsRegistry, active,
                       current_span, iter_jsonl, merge_snapshots,
                       obs_enabled, read_journal, replay, set_enabled,
                       span)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("ops").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("fleet")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5
        assert g.snapshot()["value"] == 7.5


class TestHistogramBuckets:
    """Bucket boundary semantics: inclusive upper bounds."""

    def test_value_on_boundary_lands_in_that_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # exactly the first bound -> bucket 0
        h.observe(2.0)   # exactly the second bound -> bucket 1
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[2] == 0

    def test_value_above_last_bound_overflows(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(2.0000001)
        h.observe(100.0)
        assert h.counts[-1] == 2

    def test_value_below_first_bound_in_first_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.001)
        assert h.counts[0] == 1

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())

    def test_counts_mean_min_max(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 9.0, 20.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean() == pytest.approx(31.5 / 4)
        assert h.min == 0.5
        assert h.max == 20.0


class TestHistogramPercentiles:
    def test_empty_histogram_percentile_is_zero(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.percentile(50.0) == 0.0
        assert h.percentile(99.0) == 0.0

    def test_percentile_is_bucket_upper_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        # 10 observations: 5 in (<=1), 4 in (<=2), 1 in (<=4).
        for _ in range(5):
            h.observe(0.5)
        for _ in range(4):
            h.observe(1.5)
        h.observe(3.0)
        assert h.percentile(50.0) == 1.0   # rank 5 -> first bucket
        assert h.percentile(90.0) == 2.0   # rank 9 -> second bucket
        assert h.percentile(100.0) == 3.0  # clamped to observed max

    def test_percentile_clamped_to_observed_max(self):
        h = Histogram("h", buckets=(10.0,))
        h.observe(2.0)
        assert h.percentile(99.0) == 2.0   # not the 10.0 bound

    def test_overflow_percentile_returns_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.percentile(99.0) == 50.0

    def test_out_of_range_percentile_rejected(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            h.percentile(101.0)
        with pytest.raises(ConfigurationError):
            h.percentile(-1.0)

    def test_snapshot_shape(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["buckets"] == {"1.0": 0, "2.0": 1}
        assert snap["overflow"] == 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2
        assert "a" in reg

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_snapshot_sorted_and_json_round_trips(self):
        import json
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert json.loads(reg.to_json()) == snap

    def test_to_table_renders_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        reg.histogram("lat").observe(0.25)
        text = reg.to_table().to_text()
        assert "ops" in text and "lat" in text

    def test_emit_without_journal_is_noop(self):
        MetricsRegistry().emit("place", tenant=1)  # must not raise

    def test_emit_forwards_to_journal(self):
        journal = EventJournal()
        reg = MetricsRegistry(journal=journal)
        reg.emit("place", tenant=1)
        assert len(journal) == 1
        assert journal[0].type == "place"
        assert journal[0].data == {"tenant": 1}

    def test_merge_snapshots_sums_counters(self):
        a = MetricsRegistry()
        a.counter("ops").inc(2)
        a.gauge("fleet").set(5)
        b = MetricsRegistry()
        b.counter("ops").inc(3)
        b.gauge("fleet").set(9)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["ops"]["value"] == 5
        assert merged["fleet"]["value"] == 9  # last wins for gauges


class TestSpans:
    def test_duration_populated_without_registry(self):
        with span("work") as s:
            pass
        assert s.duration is not None and s.duration >= 0.0
        assert s.path == "work"

    def test_nesting_builds_slash_paths(self):
        with span("outer") as outer:
            assert current_span() is outer
            assert outer.depth == 1
            with span("inner") as inner:
                assert inner.path == "outer/inner"
                assert inner.depth == 2
        assert current_span() is None

    def test_registry_records_span_histogram(self):
        reg = MetricsRegistry()
        with span("recovery", registry=reg):
            with span("fit", registry=reg):
                pass
        assert "span.recovery.seconds" in reg
        assert "span.recovery/fit.seconds" in reg
        assert reg.histogram("span.recovery.seconds").count == 1

    def test_registry_span_convenience(self):
        reg = MetricsRegistry()
        with reg.span("pass"):
            pass
        assert "span.pass.seconds" in reg


class TestJournal:
    def test_sequence_numbers_increase(self):
        j = EventJournal()
        j.emit("a")
        j.emit("b", x=1)
        assert [e.seq for e in j] == [0, 1]
        assert j.events("b")[0].data == {"x": 1}

    def test_empty_type_rejected(self):
        with pytest.raises(ConfigurationError):
            EventJournal().emit("")

    def test_round_trip_write_read_replay(self, tmp_path):
        j = EventJournal()
        j.emit("place", tenant=0, load=0.5, servers=[0, 1])
        j.emit("place", tenant=1, load=0.25, servers=[0, 2])
        j.emit("remove", tenant=0)
        path = tmp_path / "run.jsonl"
        j.write(path)

        events = read_journal(path)
        assert [(e.seq, e.type, e.data) for e in events] == \
            [(e.seq, e.type, e.data) for e in j]

        summary = replay(events)
        assert summary.total == 3
        assert summary.count("place") == 2
        assert summary.count("remove") == 1
        assert summary.count("never") == 0
        assert j.replay().counts == summary.counts

    def test_jsonl_one_object_per_line(self):
        j = EventJournal()
        j.emit("a")
        j.emit("b")
        lines = j.to_jsonl().splitlines()
        assert len(lines) == 2
        assert EventJournal().to_jsonl() == ""

    def test_numpy_fields_serialize(self):
        import numpy as np
        j = EventJournal()
        j.emit("place", tenant=np.int64(3), load=np.float64(0.5))
        events = list(iter_jsonl(j.to_jsonl()))
        assert events[0].data == {"tenant": 3, "load": 0.5}

    def test_corrupt_jsonl_detected(self):
        with pytest.raises(ConfigurationError):
            list(iter_jsonl('{"seq": 0, "type": "a"}\nnot json\n'))

    def test_replay_rejects_reordered_stream(self):
        j = EventJournal()
        j.emit("a")
        j.emit("b")
        events = list(j)
        with pytest.raises(ConfigurationError):
            replay(reversed(events))


class TestGlobalSwitch:
    def test_active_gates_none_and_disabled(self):
        reg = MetricsRegistry()
        assert active(None) is None
        assert active(reg) is reg
        set_enabled(False)
        try:
            assert not obs_enabled()
            assert active(reg) is None
        finally:
            set_enabled(True)
        assert obs_enabled()
        assert active(reg) is reg
