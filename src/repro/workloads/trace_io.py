"""Saving and replaying tenant traces and placement snapshots.

Experiments become auditable when their inputs and outputs are files:
this module serializes tenant sequences (the *input* of a consolidation
run) and placement assignments (the *output*) to a stable JSON format,
so runs can be diffed, replayed against other algorithms, or shipped as
regression fixtures.

Format (version 1)::

    {"format": "repro-trace", "version": 1,
     "description": "...", "seed": 7,
     "tenants": [{"id": 0, "load": 0.25}, ...]}

    {"format": "repro-placement", "version": 1,
     "gamma": 2, "algorithm": "cubefit",
     "servers": {"0": [[tenant, replica], ...], ...}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..core.placement import PlacementState
from ..core.tenant import Tenant, TenantSequence
from ..errors import ConfigurationError

TRACE_FORMAT = "repro-trace"
PLACEMENT_FORMAT = "repro-placement"
VERSION = 1

PathLike = Union[str, Path]


def save_trace(sequence: TenantSequence, path: PathLike) -> None:
    """Write a tenant sequence to ``path`` as JSON."""
    payload = {
        "format": TRACE_FORMAT,
        "version": VERSION,
        "description": sequence.description,
        "seed": sequence.seed,
        "tenants": [{"id": t.tenant_id, "load": t.load}
                    for t in sequence],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_trace(path: PathLike) -> TenantSequence:
    """Read a tenant sequence previously written by :func:`save_trace`.

    Tenant ids must be unique: a duplicated id would make every
    id-keyed consumer (:func:`load_placement`, removal, resize)
    silently pick one of the conflicting loads, so it is rejected here.
    """
    payload = _read(path, TRACE_FORMAT)
    tenants = [Tenant(tenant_id=entry["id"], load=entry["load"])
               for entry in payload["tenants"]]
    _reject_duplicate_ids(tenants, path)
    return TenantSequence(tenants=tenants,
                          description=payload.get("description", ""),
                          seed=payload.get("seed"),
                          metadata={"source": str(path)})


def save_placement(placement: PlacementState, path: PathLike,
                   algorithm: str = "") -> None:
    """Write a placement's replica assignment to ``path`` as JSON."""
    payload = {
        "format": PLACEMENT_FORMAT,
        "version": VERSION,
        "gamma": placement.gamma,
        "algorithm": algorithm,
        "servers": {str(sid): [list(key) for key in keys]
                    for sid, keys in placement.snapshot().items()},
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_placement(path: PathLike,
                   sequence: TenantSequence) -> PlacementState:
    """Rebuild a :class:`PlacementState` from a snapshot plus the trace
    that produced it (the snapshot stores assignments, not loads)."""
    payload = _read(path, PLACEMENT_FORMAT)
    gamma = payload["gamma"]
    # A duplicated tenant id in the trace would silently resolve to
    # whichever load came last; refuse instead.
    _reject_duplicate_ids(sequence, path)
    loads: Dict[int, float] = {t.tenant_id: t.load for t in sequence}
    placement = PlacementState(gamma=gamma)
    max_sid = max((int(s) for s in payload["servers"]), default=-1)
    for _ in range(max_sid + 1):
        placement.open_server()
    # Collect each tenant's replica homes, then place atomically.
    homes: Dict[int, Dict[int, int]] = {}
    for sid_str, keys in payload["servers"].items():
        for tenant_id, replica_index in keys:
            homes.setdefault(tenant_id, {})[replica_index] = int(sid_str)
    for tenant_id, by_index in homes.items():
        if tenant_id not in loads:
            raise ConfigurationError(
                f"placement references tenant {tenant_id} absent from "
                f"the trace")
        if sorted(by_index) != list(range(gamma)):
            raise ConfigurationError(
                f"tenant {tenant_id}: snapshot has replica indices "
                f"{sorted(by_index)}, expected 0..{gamma - 1}")
        servers = [by_index[j] for j in range(gamma)]
        placement.place_tenant(Tenant(tenant_id, loads[tenant_id]),
                               servers)
    return placement


def _reject_duplicate_ids(tenants, path: PathLike) -> None:
    """Raise :class:`ConfigurationError` on duplicate tenant ids."""
    seen: set = set()
    duplicates: List[int] = []
    for tenant in tenants:
        if tenant.tenant_id in seen:
            duplicates.append(tenant.tenant_id)
        seen.add(tenant.tenant_id)
    if duplicates:
        raise ConfigurationError(
            f"{path}: trace contains duplicate tenant id(s) "
            f"{sorted(set(duplicates))}; tenant ids must be unique")


def _read(path: PathLike, expected_format: str) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ConfigurationError(f"cannot read {path}: {err}") from err
    if payload.get("format") != expected_format:
        raise ConfigurationError(
            f"{path}: expected format {expected_format!r}, got "
            f"{payload.get('format')!r}")
    if payload.get("version") != VERSION:
        raise ConfigurationError(
            f"{path}: unsupported version {payload.get('version')!r}")
    return payload
