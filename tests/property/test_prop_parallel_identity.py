"""Parallel == serial, bit for bit.

The parallel experiment engine's contract is that ``jobs`` never
changes an experiment's outcome: every sweep point / run / seed
re-derives its inputs from explicit seeds, runs against its own
registry, and is folded back in item order.  These tests pin that
contract for every harness that grew a ``jobs`` parameter — first with
fixed configurations at ``jobs`` in {1, 2, 4} (the committed
acceptance case), then with hypothesis-drawn configurations.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.obs import EventJournal, MetricsRegistry
from repro.sim import (ChurnConfig, SoakConfig, compare, k_sensitivity,
                       mu_sensitivity, run_churn_seeds, run_soak_seeds)
from repro.workloads.distributions import (NormalizedClients, UniformLoad,
                                           ZipfClients)

N_TENANTS = 300  # small enough for CI, large enough to exercise packing


def _cubefit():
    return CubeFit(gamma=2, num_classes=5)


def _rfi():
    return RFI(gamma=2)


# ---------------------------------------------------------------------------
# The committed acceptance case: a 4-way parallel mu sweep must be
# bit-identical to the serial sweep.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [2, 4])
def test_mu_sweep_parallel_matches_serial(jobs):
    distribution = UniformLoad(0.6)
    serial = mu_sensitivity(distribution, n_tenants=N_TENANTS, jobs=1)
    parallel = mu_sensitivity(distribution, n_tenants=N_TENANTS,
                              jobs=jobs)
    assert serial.points == parallel.points
    assert serial.distribution == parallel.distribution


@pytest.mark.parametrize("jobs", [2, 4])
def test_k_sweep_parallel_matches_serial(jobs):
    distribution = UniformLoad(0.6)
    serial = k_sensitivity(distribution, n_tenants=N_TENANTS, jobs=1)
    parallel = k_sensitivity(distribution, n_tenants=N_TENANTS,
                             jobs=jobs)
    assert serial.points == parallel.points


def test_mu_sweep_obs_identical_across_jobs():
    """The deterministic observability surface matches across jobs.

    Wall-clock values (duration histograms' totals, the ``seconds``
    journal field) are inherently run-dependent; everything else —
    counter values, observation counts, event order and payloads —
    must be identical.
    """
    distribution = UniformLoad(0.6)
    deterministic = {}
    for jobs in (1, 4):
        registry = MetricsRegistry(journal=EventJournal())
        mu_sensitivity(distribution, n_tenants=N_TENANTS, jobs=jobs,
                       obs=registry)
        snapshot = registry.snapshot()
        counters = {name: data["value"]
                    for name, data in snapshot.items()
                    if data["type"] == "counter"}
        histogram_counts = {name: data["count"]
                            for name, data in snapshot.items()
                            if data["type"] == "histogram"}
        events = [(e.seq, e.type,
                   {k: v for k, v in e.data.items() if k != "seconds"})
                  for e in registry.journal]
        deterministic[jobs] = (counters, histogram_counts, events)
    assert deterministic[1] == deterministic[4]
    counters, _, _ = deterministic[1]
    assert counters.get("feasibility.screened", 0) > 0


def test_compare_parallel_matches_serial():
    factories = {"cubefit": _cubefit, "rfi": _rfi}
    distribution = UniformLoad(0.5)
    serial = compare(factories, distribution, N_TENANTS, runs=4,
                     base_seed=3, jobs=1)
    parallel = compare(factories, distribution, N_TENANTS, runs=4,
                       base_seed=3, jobs=4)
    assert serial.servers == parallel.servers
    assert serial.utilization == parallel.utilization
    assert serial.runs == parallel.runs


def test_soak_seeds_parallel_matches_serial():
    config = SoakConfig(operations=80)
    serial = run_soak_seeds(_cubefit, seeds=[0, 1, 2], config=config,
                            jobs=1)
    parallel = run_soak_seeds(_cubefit, seeds=[0, 1, 2], config=config,
                              jobs=3)
    for a, b in zip(serial, parallel):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
    assert all(r.ok for r in serial)


def test_churn_seeds_parallel_matches_serial():
    config = ChurnConfig(arrival_rate=6.0, mean_lifetime=10.0,
                         horizon=40.0, sample_every=10.0)
    serial = run_churn_seeds(_rfi, UniformLoad(0.4), seeds=[0, 1],
                             config=config, jobs=1)
    parallel = run_churn_seeds(_rfi, UniformLoad(0.4), seeds=[0, 1],
                               config=config, jobs=2)
    for a, b in zip(serial, parallel):
        assert a.samples == b.samples
        assert a.arrivals == b.arrivals
        assert a.departures == b.departures
        assert a.final_robust == b.final_robust


# ---------------------------------------------------------------------------
# Hypothesis: the identity holds for drawn configurations, not just the
# hand-picked ones.
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 1000),
       n_tenants=st.integers(50, 200),
       jobs=st.integers(2, 4),
       zipf=st.booleans())
@settings(max_examples=8, deadline=None)
def test_mu_sweep_identity_property(seed, n_tenants, jobs, zipf):
    distribution = NormalizedClients(ZipfClients()) if zipf \
        else UniformLoad(0.7)
    mus = (0.6, 0.85, 1.0)
    serial = mu_sensitivity(distribution, n_tenants=n_tenants, mus=mus,
                            seed=seed, jobs=1)
    parallel = mu_sensitivity(distribution, n_tenants=n_tenants,
                              mus=mus, seed=seed, jobs=jobs)
    assert serial.points == parallel.points


@given(base_seed=st.integers(0, 500),
       runs=st.integers(1, 4),
       jobs=st.integers(2, 4))
@settings(max_examples=8, deadline=None)
def test_compare_identity_property(base_seed, runs, jobs):
    factories = {"cubefit": _cubefit}
    distribution = UniformLoad(0.6)
    serial = compare(factories, distribution, 100, runs=runs,
                     base_seed=base_seed, jobs=1)
    parallel = compare(factories, distribution, 100, runs=runs,
                       base_seed=base_seed, jobs=jobs)
    assert serial.servers == parallel.servers
    assert serial.utilization == parallel.utilization
