"""Unit tests for the sensitivity and elasticity harnesses."""

import pytest

from repro.algorithms.base import OnlinePlacementAlgorithm
from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant
from repro.sim.elasticity import ElasticityConfig, run_elasticity
from repro.sim.sensitivity import (k_sensitivity, mu_sensitivity,
                                   SensitivityCurve)
from repro.workloads.distributions import TraceLoads, UniformLoad
from repro.errors import ConfigurationError


class TestMuSensitivity:
    @pytest.fixture(scope="class")
    def curve(self):
        return mu_sensitivity(UniformLoad(0.4), n_tenants=400,
                              mus=(0.6, 0.85, 1.0), seed=0)

    def test_one_point_per_mu(self, curve):
        assert [p.parameter for p in curve.points] == [0.6, 0.85, 1.0]

    def test_servers_positive(self, curve):
        assert all(p.servers > 0 for p in curve.points)

    def test_servers_at(self, curve):
        assert curve.servers_at(0.85) == curve.points[1].servers
        with pytest.raises(ConfigurationError):
            curve.servers_at(0.77)

    def test_best(self, curve):
        best = curve.best()
        assert best.servers == min(p.servers for p in curve.points)

    def test_table(self, curve):
        assert "mu sensitivity" in str(curve)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            mu_sensitivity(UniformLoad(0.4), mus=())


class TestKSensitivity:
    def test_curve_shape(self):
        curve = k_sensitivity(UniformLoad(0.4), n_tenants=400,
                              ks=(2, 5, 10), seed=0)
        assert len(curve.points) == 3
        assert curve.parameter_name == "K"
        # The paper's guidance: very few classes pack worse than K~5-10.
        assert curve.servers_at(2) >= curve.servers_at(5)


class TestElasticity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_elasticity(
            lambda: CubeFit(gamma=2, num_classes=10), UniformLoad(0.4),
            ElasticityConfig(n_tenants=80, n_updates=120, seed=0))

    def test_counts_partition(self, result):
        assert result.updates == 120
        assert result.migrations + result.in_place == result.updates

    def test_robust_throughout(self, result):
        assert result.robust_throughout

    def test_rates(self, result):
        assert 0.0 <= result.migration_rate <= 1.0

    def test_table(self, result):
        assert "Elasticity" in result.to_table().to_text()

    def test_rfi_also_robust(self):
        result = run_elasticity(
            lambda: RFI(gamma=2), UniformLoad(0.4),
            ElasticityConfig(n_tenants=60, n_updates=80, seed=1))
        assert result.robust_throughout

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticityConfig(n_tenants=0)
        with pytest.raises(ConfigurationError):
            ElasticityConfig(min_factor=0.0)
        with pytest.raises(ConfigurationError):
            ElasticityConfig(min_factor=2.0, max_factor=1.0)


class _OneReplicaMover(OnlinePlacementAlgorithm):
    """Scripted algorithm: tenants live on servers [0, 1]; a resize
    re-homes exactly one of the two replicas (to server 2)."""

    name = "scripted-one-replica-mover"

    def __init__(self):
        super().__init__(gamma=2)
        self.last_new_load = None

    def _place(self, tenant):
        while self.placement.num_servers < 2:
            self.placement.open_server()
        self.placement.place_tenant(tenant, [0, 1])
        return (0, 1)

    def _update_load(self, tenant_id, new_load):
        self.last_new_load = new_load
        self._remove(tenant_id)
        while self.placement.num_servers < 3:
            self.placement.open_server()
        self.placement.place_tenant(Tenant(tenant_id, new_load), [0, 2])
        return (0, 2)


class TestPartialMigrationAccounting:
    """load_migrated counts only replicas that actually moved.

    With gamma=2 homes going [0, 1] -> [0, 2], one replica moved: the
    data-movement cost is one replica's share (new_load / 2), not the
    tenant's whole load (the pre-fix behaviour).
    """

    def test_one_moved_replica_costs_half_the_load(self):
        instances = []

        def factory():
            algo = _OneReplicaMover()
            instances.append(algo)
            return algo

        result = run_elasticity(
            factory, TraceLoads([0.5]),
            ElasticityConfig(n_tenants=1, n_updates=1, seed=0))
        assert result.updates == 1
        assert result.migrations == 1 and result.in_place == 0
        new_load = instances[0].last_new_load
        assert new_load is not None
        assert result.load_migrated == pytest.approx(new_load / 2.0)
        assert result.load_migrated < new_load  # the old bug's value
