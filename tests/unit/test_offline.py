"""Unit tests for the offline solvers (exact OPT and FFD)."""

import numpy as np
import pytest

from repro.algorithms.offline import (OfflineFirstFitDecreasing,
                                      optimal_servers)
from repro.algorithms.lower_bound import capacity_lower_bound
from repro.core.tenant import make_tenants
from repro.core.validation import audit
from repro.errors import ConfigurationError


class TestOptimalServers:
    def test_empty(self):
        assert optimal_servers([], gamma=2) == 0

    def test_single_tenant_needs_gamma_servers(self):
        assert optimal_servers([1.0], gamma=2) == 2
        assert optimal_servers([0.9], gamma=3) == 3

    def test_full_load_tenants_cannot_share(self):
        """Two tenants of load 1: replicas 0.5 each plus a 0.5 reserve
        per server — no two replicas can coexist."""
        assert optimal_servers([1.0, 1.0], gamma=2) == 4

    def test_small_tenants_pack_together(self):
        # Four tenants of 0.2: replicas 0.1; all fit on 2 servers with
        # reserve 0.4 + load 0.4 <= 1.
        assert optimal_servers([0.2] * 4, gamma=2) == 2

    def test_opt_at_least_capacity_bound(self):
        rng = np.random.default_rng(71)
        for _ in range(3):
            loads = list(rng.uniform(0.1, 0.8, 6))
            opt = optimal_servers(loads, gamma=2)
            assert opt >= capacity_lower_bound(loads)
            assert opt >= 2  # gamma distinct servers

    def test_opt_never_beaten_by_online_algorithms(self):
        from repro.core.cubefit import CubeFit
        from repro.algorithms.rfi import RFI
        rng = np.random.default_rng(73)
        loads = list(rng.uniform(0.1, 0.9, 7))
        opt = optimal_servers(loads, gamma=2)
        for algo in (CubeFit(gamma=2, num_classes=5), RFI(gamma=2)):
            algo.consolidate(make_tenants(loads))
            # RFI reserves for fewer failures than OPT's full budget,
            # so only CubeFit is strictly comparable; both must be >=
            # OPT minus nothing when reserving gamma-1 failures.
            if algo.name == "cubefit":
                assert algo.placement.num_servers >= opt

    def test_opt_matches_ffd_on_easy_instance(self):
        loads = [0.4, 0.4, 0.4, 0.4]
        opt = optimal_servers(loads, gamma=2)
        ffd = OfflineFirstFitDecreasing(gamma=2)
        ffd.consolidate(make_tenants(loads))
        assert opt <= ffd.placement.num_servers

    def test_tenant_cap_guard(self):
        with pytest.raises(ConfigurationError):
            optimal_servers([0.1] * 20, gamma=2)

    def test_failures_budget_zero_packs_tighter(self):
        """Without any failover reserve, packings can be denser."""
        loads = [0.5, 0.5, 0.5]
        robust = optimal_servers(loads, gamma=2, failures=1)
        non_robust = optimal_servers(loads, gamma=2, failures=0)
        assert non_robust <= robust


class TestOfflineFFD:
    def test_robust(self):
        rng = np.random.default_rng(79)
        loads = list(rng.uniform(0.01, 1.0, 150))
        algo = OfflineFirstFitDecreasing(gamma=2)
        algo.consolidate(make_tenants(loads))
        assert audit(algo.placement).ok

    def test_usually_beats_online_firstfit(self):
        """Sorting first is worth servers on adversarial-ish inputs."""
        from repro.algorithms.naive import RobustFirstFit
        rng = np.random.default_rng(83)
        loads = list(rng.uniform(0.05, 0.95, 400))
        offline = OfflineFirstFitDecreasing(gamma=2)
        offline.consolidate(make_tenants(loads))
        online = RobustFirstFit(gamma=2)
        online.consolidate(make_tenants(loads))
        assert offline.placement.num_servers <= \
            online.placement.num_servers

    def test_registered(self):
        from repro.algorithms.base import make_algorithm
        algo = make_algorithm("offline-ffd", gamma=2)
        assert algo.name == "offline-ffd"
