"""Failpoint seams wired through store, algorithms, and the pool.

Each test arms one failpoint, drives the real code path through it,
and asserts the conformance-relevant consequence: the typed error
carries the failpoint name, the on-disk damage is exactly what the
seam advertises, and every interrupted algorithm operation rolls back
to the pre-operation placement.
"""

import pytest

from repro import faults
from repro.algorithms.naive import RobustBestFit
from repro.core.tenant import Tenant
from repro.core.validation import audit
from repro.errors import (FaultInjected, SimulatedCrash,
                          StoreCorruptionError)
from repro.store import diff_placements, recover
from repro.store.wal import WriteAheadLog


def _clone(placement):
    from repro.sim.chaos import _clone
    return _clone(placement)


class TestWalSeams:
    def test_append_fault_commits_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("op", {"n": 0})
        with faults.injected("store.wal.append", action="raise"):
            with pytest.raises(FaultInjected) as exc:
                wal.append("op", {"n": 1})
        assert exc.value.failpoint == "store.wal.append"
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert [r.data["n"] for r in reopened.records()] == [0]
        assert reopened.next_seq == 1
        reopened.close()

    def test_torn_tail_crash_is_repaired_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("op", {"n": 0})
        with faults.injected("store.wal.torn_tail", action="crash"):
            with pytest.raises(SimulatedCrash):
                wal.append("op", {"n": 1})
        # The torn half-line really reached the segment file.
        segment = wal.segments()[-1]
        wal.close()
        assert not segment.read_text().endswith("\n")
        reopened = WriteAheadLog(tmp_path)
        assert [r.data["n"] for r in reopened.records()] == [0]
        assert reopened.next_seq == 1  # seq 1 was never committed
        reopened.append("op", {"n": 1})  # the tail is writable again
        assert [r.data["n"] for r in reopened.records()] == [0, 1]
        reopened.close()

    def test_fsync_fault_surfaces_after_bytes_flushed(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with faults.injected("store.wal.fsync", action="raise"):
            with pytest.raises(FaultInjected) as exc:
                wal.append("op", {"n": 0})
        assert exc.value.failpoint == "store.wal.fsync"
        wal.close()
        # The record was durable even though the caller saw an error —
        # the classic ambiguous-outcome fsync failure.
        reopened = WriteAheadLog(tmp_path)
        assert [r.data["n"] for r in reopened.records()] == [0]
        reopened.close()

    def test_read_corruption_is_detected_not_tolerated(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("op", {"n": 0})
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        with faults.injected("store.wal.read", action="corrupt",
                             max_fires=1):
            with pytest.raises(StoreCorruptionError):
                list(reopened.records())
        reopened.close()


class TestCheckpointSeams:
    def _store_with_ops(self, store_factory, count=6):
        store = store_factory()
        algo = RobustBestFit(gamma=2)
        algo.attach_store(store)
        for i in range(count):
            algo.place(Tenant(i, 0.2))
        return store, algo

    def test_checkpoint_write_fault_leaves_no_file(self, tmp_path,
                                                   store_factory):
        store, algo = self._store_with_ops(store_factory)
        with faults.injected("store.checkpoint.write", action="raise"):
            with pytest.raises(FaultInjected):
                store.checkpoint(algo.placement)
        assert not (tmp_path / "st" / "checkpoint.json").exists()
        state = recover(tmp_path / "st")  # WAL alone still recovers
        assert diff_placements(algo.placement, state.placement,
                               compare_tags=False) == []

    def test_partial_checkpoint_crash_never_replaces(self, tmp_path,
                                                     store_factory):
        store, algo = self._store_with_ops(store_factory)
        store.checkpoint(algo.placement)  # a good prior checkpoint
        algo.place(Tenant(100, 0.1))
        with faults.injected("store.checkpoint.partial",
                             action="crash"):
            with pytest.raises(SimulatedCrash):
                store.checkpoint(algo.placement)
        # The atomic rename never happened: the good checkpoint (plus
        # the WAL tail) still recovers the exact live state.
        state = recover(tmp_path / "st")
        assert diff_placements(algo.placement, state.placement,
                               compare_tags=False) == []

    def test_recover_replay_fault_then_retry_succeeds(self, tmp_path,
                                                      store_factory):
        _store, algo = self._store_with_ops(store_factory)
        with faults.injected("store.recover.replay", action="raise"):
            with pytest.raises(FaultInjected):
                recover(tmp_path / "st")
        # max_fires=1 disarmed the point: the retry converges.
        state = recover(tmp_path / "st")
        assert diff_placements(algo.placement, state.placement,
                               compare_tags=False) == []


class TestAlgorithmRollback:
    """A fault anywhere inside _place/_update_load must leave the
    placement exactly as it was — at *every* interruption depth."""

    def _loaded(self):
        algo = RobustBestFit(gamma=2)
        for i in range(8):
            algo.place(Tenant(i, 0.25))
        return algo

    def test_place_entry_fault_changes_nothing(self):
        algo = self._loaded()
        pre = _clone(algo.placement)
        with faults.injected("algo.place", action="raise"):
            with pytest.raises(FaultInjected):
                algo.place(Tenant(50, 0.3))
        assert diff_placements(algo.placement, pre) == []

    def test_place_rolls_back_at_every_probe_depth(self):
        for depth in range(1, 30):
            algo = self._loaded()
            pre = _clone(algo.placement)
            faults.FAILPOINTS.activate("algo.feasibility",
                                       action="raise", after_hits=depth)
            try:
                algo.place(Tenant(50, 0.3))
            except FaultInjected:
                assert diff_placements(algo.placement, pre) == [], \
                    f"partial placement leaked at probe depth {depth}"
                assert audit(algo.placement,
                             failures=algo.failures).ok
            else:
                # Deeper than the operation probes: nothing to test.
                faults.FAILPOINTS.clear()
                assert 50 in algo.placement.tenant_ids
                break
            finally:
                faults.FAILPOINTS.clear()
        else:
            pytest.fail("algo.feasibility never stopped firing")

    def test_update_load_restores_at_every_probe_depth(self):
        for depth in range(1, 40):
            algo = self._loaded()
            pre = _clone(algo.placement)
            faults.FAILPOINTS.activate("algo.feasibility",
                                       action="raise", after_hits=depth)
            try:
                algo.update_load(3, 0.6)
            except FaultInjected:
                assert diff_placements(algo.placement, pre) == [], \
                    f"partial update leaked at probe depth {depth}"
            else:
                faults.FAILPOINTS.clear()
                homes = algo.placement.tenant_servers(3)
                assert homes  # the update really went through
                break
            finally:
                faults.FAILPOINTS.clear()
        else:
            pytest.fail("algo.feasibility never stopped firing")

    def test_remove_entry_fault_keeps_tenant(self):
        algo = self._loaded()
        pre = _clone(algo.placement)
        with faults.injected("algo.remove", action="raise"):
            with pytest.raises(FaultInjected):
                algo.remove(2)
        assert diff_placements(algo.placement, pre) == []
        assert 2 in algo.placement.tenant_ids


class TestPoolSeams:
    def test_worker_fault_propagates_serially(self):
        from repro.par import pmap
        with faults.injected("par.worker", action="raise"):
            with pytest.raises(FaultInjected):
                pmap(lambda item, registry: item, [1, 2, 3], jobs=1)

    def test_worker_fault_after_hits_lets_early_items_run(self):
        from repro.par import pmap
        ran = []
        with faults.injected("par.worker", action="raise",
                             after_hits=3):
            with pytest.raises(FaultInjected):
                pmap(lambda item, registry: ran.append(item),
                     [1, 2, 3], jobs=1)
        assert ran == [1, 2]

    def test_absorb_drop_loses_counters_not_results(self):
        from repro.obs import MetricsRegistry
        from repro.par import pmap

        def work(item, registry):
            if registry is not None:
                registry.counter("work.items").inc()
            return item * 2

        obs = MetricsRegistry()
        with faults.injected("par.absorb.drop", action="raise",
                             max_fires=1):
            results = pmap(work, [1, 2, 3], jobs=1, obs=obs)
        assert results == [2, 4, 6]  # results intact
        # Exactly one worker's snapshot was dropped in transit.
        assert obs.counter("work.items").value == 2
