"""Property-based tests of the shared-load index's consistency."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.placement import PlacementState
from repro.core.tenant import Tenant


def recompute_shared(ps, a, b):
    """Reference implementation: |S_a ∩ S_b| from first principles."""
    total = 0.0
    server = ps.server(a)
    for (tenant_id, _idx), replica in server.replicas.items():
        homes = set(ps.tenant_servers(tenant_id).values())
        if b in homes:
            total += replica.load
    return total


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["place", "remove"]),
        st.integers(min_value=0, max_value=11),   # tenant id
        st.floats(min_value=0.02, max_value=0.3),
        st.permutations(range(5)),
    ),
    min_size=1, max_size=30)


@given(ops=ops_strategy, gamma=st.sampled_from([2, 3]))
@settings(max_examples=50, deadline=None)
def test_shared_index_matches_reference(ops, gamma):
    """After arbitrary interleavings of tenant placements and removals,
    the incremental shared-load index equals a from-scratch recount."""
    ps = PlacementState(gamma=gamma)
    for _ in range(5):
        ps.open_server()
    for op, tid, load, perm in ops:
        if op == "place":
            if ps.tenant_servers(tid):
                continue  # already placed
            try:
                ps.place_tenant(Tenant(tid, load), list(perm[:gamma]))
            except Exception:
                continue  # capacity exceeded; fine
        else:
            if ps.tenant_servers(tid):
                ps.remove_tenant(tid)
    for a, b in itertools.permutations(ps.server_ids, 2):
        assert abs(ps.shared_load(a, b)
                   - recompute_shared(ps, a, b)) < 1e-9


@given(ops=ops_strategy)
@settings(max_examples=30, deadline=None)
def test_loads_never_negative_and_symmetric(ops):
    ps = PlacementState(gamma=2)
    for _ in range(5):
        ps.open_server()
    for op, tid, load, perm in ops:
        if op == "place" and not ps.tenant_servers(tid):
            try:
                ps.place_tenant(Tenant(tid, load), list(perm[:2]))
            except Exception:
                continue
        elif op == "remove" and ps.tenant_servers(tid):
            ps.remove_tenant(tid)
    for server in ps:
        assert server.load >= -1e-12
    for a, b in itertools.combinations(ps.server_ids, 2):
        assert abs(ps.shared_load(a, b) - ps.shared_load(b, a)) < 1e-12
