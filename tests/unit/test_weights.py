"""Unit tests for the Theorem 2 weight function."""

from fractions import Fraction

import pytest

from repro.analysis.weights import (replica_weight, tenant_weight,
                                    tiny_weight_density, total_weight)
from repro.errors import ConfigurationError


class TestTinyDensity:
    def test_alpha_density(self):
        # K=211, gamma=2: alpha=14 -> density 15/13
        assert tiny_weight_density(2, 211, "alpha") == Fraction(15, 13)
        # K=211, gamma=3: density 15/12 = 5/4
        assert tiny_weight_density(3, 211, "alpha") == Fraction(5, 4)

    def test_last_class_density(self):
        # (K+gamma-1)/(K-1)
        assert tiny_weight_density(2, 10, "last-class") == Fraction(11, 9)
        assert tiny_weight_density(3, 10, "last-class") == Fraction(12, 9)

    def test_alpha_undefined_for_small_k(self):
        with pytest.raises(ConfigurationError):
            tiny_weight_density(3, 10, "alpha")  # alpha_K = 2 < gamma

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            tiny_weight_density(2, 10, "bogus")


class TestReplicaWeight:
    def test_class_weight_is_one_over_tau(self):
        # gamma=2: size in (1/3, 1/2] -> class 1 -> weight 1
        assert replica_weight(0.5, 2, 10) == Fraction(1)
        assert replica_weight(0.4, 2, 10) == Fraction(1)
        # size in (1/4, 1/3] -> class 2 -> weight 1/2
        assert replica_weight(Fraction(1, 3), 2, 10) == Fraction(1, 2)
        assert replica_weight(0.3, 2, 10) == Fraction(1, 2)

    def test_tiny_weight_is_density_times_size(self):
        density = tiny_weight_density(2, 10, "last-class")
        size = Fraction(1, 100)
        assert replica_weight(size, 2, 10, "last-class") == density * size

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            replica_weight(0, 2, 10)

    def test_sealed_multireplica_weight_covers_slot(self):
        """A sealed multi-replica (size > threshold - tiny_max) must
        weigh at least 1/target_class."""
        gamma, K = 2, 10
        density = tiny_weight_density(gamma, K, "last-class")
        # last-class: threshold = 1/(K+gamma-2) = 1/10;
        # sealed size > 1/10 - 1/11 is NOT the right bound; the weight
        # guarantee uses sizes > 1/(K+gamma-1) = 1/11.
        sealed_min = Fraction(1, K + gamma - 1)
        assert sealed_min * density >= Fraction(1, K - 1)


class TestTenantAndTotal:
    def test_tenant_weight_sums_replicas(self):
        # load 0.9, gamma 2 -> replicas 0.45 (class 1, weight 1 each)
        assert tenant_weight(0.9, 2, 10) == Fraction(2)

    def test_total_weight(self):
        loads = [0.9, 0.9]
        assert total_weight(loads, 2, 10) == Fraction(4)

    def test_total_weight_empty(self):
        assert total_weight([], 2, 10) == Fraction(0)
