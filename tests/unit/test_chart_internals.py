"""Unit tests for chart layout internals (ticks, formatting)."""

import pytest

from repro.viz.charts import _fmt_value, _nice_ticks


class TestNiceTicks:
    def test_ladder_steps(self):
        # Steps snap to the 1/2/5 ladder.
        assert _nice_ticks(10.0) == [0.0, 5.0, 10.0]
        assert _nice_ticks(4.0) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert _nice_ticks(0.3) == [0.0, 0.1, 0.2, 0.3]

    def test_covers_upper(self):
        for upper in (0.3, 7.0, 123.0, 9999.0):
            ticks = _nice_ticks(upper)
            assert ticks[0] == 0.0
            assert ticks[-1] >= upper

    def test_tick_count_reasonable(self):
        for upper in (1.0, 37.0, 501.0):
            assert 3 <= len(_nice_ticks(upper)) <= 8

    def test_ticks_evenly_spaced(self):
        for upper in (0.7, 6.0, 88.0):
            ticks = _nice_ticks(upper)
            steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
            assert len(steps) == 1

    def test_degenerate_upper(self):
        assert _nice_ticks(0.0) == [0.0, 1.0]
        assert _nice_ticks(-5.0) == [0.0, 1.0]


class TestFmtValue:
    @pytest.mark.parametrize("value,expected", [
        (1234.0, "1,234"),
        (150.0, "150"),
        (42.0, "42"),
        (4.5, "4.5"),
        (0.25, "0.25"),
        (0.0, "0"),
        (-7.0, "-7"),
    ])
    def test_formatting(self, value, expected):
        assert _fmt_value(value) == expected
