"""Calibration of the linear load model against the simulated cluster.

Reproduces the paper's Section IV methodology one level down: instead of
benchmarking TPC-H on real Xeons, we benchmark the synthetic workload on
the simulated machine.  For each tenant count ``T`` we binary-search the
largest total client count whose 99th-percentile latency still meets the
SLA; the resulting (clients, tenants) boundary points are fed to a
least-squares fit of ``delta * clients + beta * tenants = 1``
(:func:`repro.workloads.loadmodel.fit_boundary`).

"Some client-tenant configurations resulted in the SLA being violated
while others met the SLA.  This allowed us to derive the equation of the
line that separates the configurations that meet SLA from those that do
not, providing us with the values for delta and beta."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import CalibrationError
from ..workloads.loadmodel import BoundaryPoint, LinearLoadModel, \
    fit_boundary
from .experiment import ClusterConfig, ClusterExperiment


@dataclass
class CalibrationResult:
    """Fitted model plus the raw boundary measurements."""

    model: LinearLoadModel
    boundary: List[BoundaryPoint]
    #: (tenants, clients) -> measured p99 for every probed configuration.
    probes: Dict[tuple, float] = field(default_factory=dict)

    @property
    def max_clients_single_tenant(self) -> int:
        """The paper's C: clients one tenant can run at unit load."""
        return self.model.max_clients(capacity=1.0, tenants=1)


def measure_p99(tenants: int, clients: int,
                config: ClusterConfig) -> float:
    """p99 latency of one machine hosting ``tenants`` tenants with
    ``clients`` total clients (replication factor 1: calibration is a
    single-machine measurement, as in the paper)."""
    if tenants < 1 or clients < 1:
        raise CalibrationError(
            f"need tenants >= 1 and clients >= 1, got {tenants}, {clients}")
    homes = {tid: [0] for tid in range(tenants)}
    base, extra = divmod(clients, tenants)
    counts = {tid: base + (1 if tid < extra else 0)
              for tid in range(tenants)}
    experiment = ClusterExperiment(homes, counts, config)
    return experiment.run().p99


def find_boundary_clients(tenants: int, config: ClusterConfig,
                          lo: int = 1, hi: int = 128) -> BoundaryPoint:
    """Largest client count meeting the SLA for ``tenants`` tenants.

    Standard binary search on the (noisy but strongly monotone) p99
    curve.  ``hi`` is doubled until it violates the SLA so the search
    brackets the boundary.
    """
    sla = config.sla_seconds
    if measure_p99(tenants, lo, config) > sla:
        raise CalibrationError(
            f"{tenants} tenant(s) violate the SLA even with {lo} client(s);"
            f" the per-tenant overhead exceeds server capacity")
    while measure_p99(tenants, hi, config) <= sla:
        lo = hi
        hi *= 2
        if hi > 4096:
            raise CalibrationError(
                "SLA never violated; demand scale is implausibly low")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if measure_p99(tenants, mid, config) <= sla:
            lo = mid
        else:
            hi = mid
    return BoundaryPoint(tenants=tenants, clients=lo)


def calibrate_load_model(
        tenant_counts: Sequence[int] = (1, 4, 8, 12),
        config: Optional[ClusterConfig] = None) -> CalibrationResult:
    """Full calibration pass: boundary search per tenant count + fit."""
    if config is None:
        # Short windows: calibration needs many runs, and the boundary
        # position converges quickly.
        config = ClusterConfig(warmup=30.0, measure=60.0)
    boundary = [find_boundary_clients(t, config) for t in tenant_counts]
    model = fit_boundary(boundary)
    return CalibrationResult(model=model, boundary=boundary)
