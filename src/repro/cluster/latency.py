"""Query latency recording and SLA evaluation.

The paper's SLA is a 99th-percentile latency of 5 seconds, measured over
a five-minute window after warm-up.  The recorder keeps per-query
latencies stamped with completion time and evaluates percentiles over a
configurable measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.stats import mean, percentile
from ..errors import ConfigurationError

#: The paper's SLA: 5 seconds at the 99th percentile.
DEFAULT_SLA_SECONDS = 5.0
SLA_PERCENTILE = 99.0


@dataclass
class LatencySample:
    """One completed query.

    ``server_id`` is the machine that determined the latency (the only
    machine for reads; the slowest replica for fan-out updates).
    """

    completed_at: float
    tenant_id: int
    query_name: str
    latency: float
    server_id: int = -1


class LatencyRecorder:
    """Collects samples; computes windowed percentiles.

    ``window`` is the half-open interval ``[start, end)`` of completion
    times included in statistics; samples outside it (warm-up, drain) are
    counted but not aggregated.
    """

    def __init__(self, window_start: float = 0.0,
                 window_end: float = float("inf"),
                 obs=None) -> None:
        if window_end < window_start:
            raise ConfigurationError(
                f"window_end {window_end} < window_start {window_start}")
        self.window_start = window_start
        self.window_end = window_end
        self._samples: List[LatencySample] = []
        #: Queries whose tenant had no surviving replica.
        self.dropped = 0
        #: All completions ever seen (in or out of window).
        self.total_completed = 0
        # Optional metrics feed: every completion (in or out of window)
        # counts under cluster.queries and lands in the latency
        # histogram; drops count under cluster.dropped_queries.
        from ..obs import active
        self._obs = active(obs)

    def record(self, completed_at: float, tenant_id: int,
               query_name: str, latency: float,
               server_id: int = -1) -> None:
        self.total_completed += 1
        obs = self._obs
        if obs is not None:
            obs.counter("cluster.queries").inc()
            obs.histogram("cluster.query_seconds").observe(latency)
        if self.window_start <= completed_at < self.window_end:
            self._samples.append(LatencySample(
                completed_at=completed_at, tenant_id=tenant_id,
                query_name=query_name, latency=latency,
                server_id=server_id))

    def record_dropped(self) -> None:
        self.dropped += 1
        if self._obs is not None:
            self._obs.counter("cluster.dropped_queries").inc()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Samples inside the measurement window."""
        return len(self._samples)

    def latencies(self) -> List[float]:
        return [s.latency for s in self._samples]

    def p99(self) -> float:
        """The SLA metric; raises if the window is empty."""
        return percentile(self.latencies(), SLA_PERCENTILE)

    def mean_latency(self) -> float:
        return mean(self.latencies())

    def percentile(self, q: float) -> float:
        return percentile(self.latencies(), q)

    def meets_sla(self, sla_seconds: float = DEFAULT_SLA_SECONDS,
                  min_samples: int = 200) -> bool:
        """True when every server's p99 <= SLA *and* no query was dropped
        for lack of a surviving replica (an unavailable tenant violates
        its SLA by definition)."""
        if self.dropped > 0:
            return False
        return self.worst_server_p99(min_samples=min_samples) <= sla_seconds

    def per_tenant_p99(self, min_samples: int = 1) -> Dict[int, float]:
        """p99 per tenant (tenants with >= ``min_samples`` samples)."""
        grouped: Dict[int, List[float]] = {}
        for sample in self._samples:
            grouped.setdefault(sample.tenant_id, []).append(sample.latency)
        return {tid: percentile(vals, SLA_PERCENTILE)
                for tid, vals in grouped.items()
                if len(vals) >= min_samples}

    def worst_tenant_p99(self, min_samples: int = 30) -> float:
        """Largest per-tenant p99 — the SLA metric.

        The SLA is an agreement with each customer, so the system meets
        it only if *every* tenant's 99th-percentile latency is within
        bound; a cluster-wide percentile would dilute an overloaded
        server among healthy ones.  Tenants with fewer than
        ``min_samples`` completions are skipped (their percentile is
        noise); if no tenant qualifies the unfiltered per-tenant maximum
        is used.
        """
        per_tenant = self.per_tenant_p99(min_samples=min_samples)
        if not per_tenant:
            per_tenant = self.per_tenant_p99(min_samples=1)
        return max(per_tenant.values())

    def violating_tenants(self, sla_seconds: float = DEFAULT_SLA_SECONDS,
                          min_samples: int = 30) -> List[int]:
        """Tenants whose p99 exceeds the SLA."""
        per_tenant = self.per_tenant_p99(min_samples=min_samples)
        return sorted(tid for tid, value in per_tenant.items()
                      if value > sla_seconds)

    def per_server_p99(self, min_samples: int = 1) -> Dict[int, float]:
        """p99 per serving machine (servers with >= ``min_samples``)."""
        grouped: Dict[int, List[float]] = {}
        for sample in self._samples:
            grouped.setdefault(sample.server_id, []).append(sample.latency)
        return {sid: percentile(vals, SLA_PERCENTILE)
                for sid, vals in grouped.items()
                if len(vals) >= min_samples}

    def worst_server_p99(self, min_samples: int = 200) -> float:
        """Largest per-server p99 — the SLA metric of the experiments.

        The load model ties the SLA to per-server load ("a load of 1.0
        corresponds to the 5 s p99"), so SLA compliance is judged where
        overload manifests: on individual servers.  Every tenant hosted
        on a compliant server is compliant.  Per-server percentiles are
        statistically solid (thousands of queries per server per
        window), unlike per-tenant percentiles of small tenants.
        """
        per_server = self.per_server_p99(min_samples=min_samples)
        if not per_server:
            per_server = self.per_server_p99(min_samples=1)
        return max(per_server.values())

    def violating_servers(self, sla_seconds: float = DEFAULT_SLA_SECONDS,
                          min_samples: int = 200) -> List[int]:
        """Servers whose p99 exceeds the SLA."""
        per_server = self.per_server_p99(min_samples=min_samples)
        return sorted(sid for sid, value in per_server.items()
                      if value > sla_seconds)

    def throughput(self) -> float:
        """Completions per second inside the window."""
        span = self.window_end - self.window_start
        if span <= 0 or span == float("inf"):
            return 0.0
        return self.count / span

    def to_csv(self, path=None) -> str:
        """Raw in-window samples as CSV (for offline analysis).

        Columns: ``completed_at, tenant_id, server_id, query, latency``.
        Written to ``path`` when given; the text is returned either way.
        """
        lines = ["completed_at,tenant_id,server_id,query,latency"]
        for s in self._samples:
            lines.append(f"{s.completed_at:.6f},{s.tenant_id},"
                         f"{s.server_id},{s.query_name},"
                         f"{s.latency:.6f}")
        text = "\n".join(lines) + "\n"
        if path is not None:
            from pathlib import Path
            Path(path).write_text(text)
        return text
