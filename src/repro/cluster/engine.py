"""Minimal discrete-event simulation engine.

A classic calendar-queue simulator: events are ``(time, seq, callback)``
triples in a binary heap; ``seq`` breaks ties FIFO so simultaneous events
fire in schedule order (determinism matters for reproducible latency
percentiles).  Cancellation is by token: cancelled events stay in the
heap but are skipped when popped.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event loop with a monotonically advancing clock.

    Pass ``obs`` (a :class:`~repro.obs.MetricsRegistry`) to count
    dispatched events under ``sim.events``; the counter object is
    resolved once so the per-event cost is a single increment.
    """

    def __init__(self, obs=None) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, EventHandle,
                               Callable[[], None]]] = []
        self._seq = itertools.count()
        #: Total events dispatched (for perf reporting).
        self.events_dispatched = 0
        from ..obs import active
        gated = active(obs)
        self._event_counter = gated.counter("sim.events") \
            if gated is not None else None

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at absolute ``time``."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}")
        handle = EventHandle()
        heapq.heappush(self._heap, (time, next(self._seq), handle, callback))
        return handle

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Dispatch events up to and including ``end_time``."""
        heap = self._heap
        counter = self._event_counter
        while heap and heap[0][0] <= end_time:
            time, _seq, handle, callback = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            self.events_dispatched += 1
            if counter is not None:
                counter.inc()
            callback()
        self.now = max(self.now, end_time)

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Dispatch until the heap drains (or ``max_events`` is hit)."""
        heap = self._heap
        counter = self._event_counter
        dispatched = 0
        while heap:
            time, _seq, handle, callback = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            self.events_dispatched += 1
            if counter is not None:
                counter.inc()
            callback()
            dispatched += 1
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"run_all exceeded {max_events} events; likely a "
                    f"runaway event loop")

    @property
    def pending(self) -> int:
        """Events still in the heap (including cancelled ones)."""
        return len(self._heap)
