"""The linear tenant load model of Section IV.

The paper models the in-memory load a tenant places on its server as::

    load = delta * c + beta

where ``c`` is the tenant's number of concurrent clients, ``delta`` the
capacity each client consumes and ``beta`` the fixed per-tenant overhead.
Loads above 1.0 mean the server is over-utilized (the 99th-percentile
latency exceeds the SLA).  Following Schaffner et al. (ICDE 2011), loads
of co-located tenants are additive.

``delta`` and ``beta`` are hardware-specific; the paper derives them by
finding the line separating client/tenant configurations that meet the
SLA from those that do not.  :mod:`repro.cluster.calibration` performs
the same procedure against the simulated cluster; this module holds the
resulting model and a least-squares boundary fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import CalibrationError, ConfigurationError


@dataclass(frozen=True)
class LinearLoadModel:
    """``load = delta * clients + beta`` per tenant."""

    delta: float
    beta: float

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(
                f"delta must be positive, got {self.delta}")
        if self.beta < 0:
            raise ConfigurationError(
                f"beta must be non-negative, got {self.beta}")

    def load(self, clients: int) -> float:
        """Load placed by one tenant with ``clients`` concurrent clients.

        May exceed 1.0 — that is the model's signal of over-utilization.
        """
        if clients < 0:
            raise ConfigurationError(
                f"clients must be non-negative, got {clients}")
        if clients == 0:
            return 0.0
        return self.delta * clients + self.beta

    def server_load(self, tenant_clients: Sequence[int]) -> float:
        """Additive load of multiple co-hosted tenants."""
        return sum(self.load(c) for c in tenant_clients)

    def max_clients(self, capacity: float = 1.0, tenants: int = 1) -> int:
        """Largest total client count ``tenants`` co-hosted tenants can
        serve within ``capacity`` (the paper's C = 52 for one tenant)."""
        if tenants < 1:
            raise ConfigurationError(
                f"tenants must be >= 1, got {tenants}")
        budget = capacity - self.beta * tenants
        if budget <= 0:
            return 0
        return int(math.floor(budget / self.delta + 1e-9))

    def clients_for_load(self, load: float) -> int:
        """Approximate client count producing ``load`` for one tenant."""
        if load <= self.beta:
            return 0
        return max(0, int(round((load - self.beta) / self.delta)))


@dataclass(frozen=True)
class BoundaryPoint:
    """One measured configuration on the SLA boundary.

    ``tenants`` co-hosted tenants with ``clients`` total clients was the
    largest client count still meeting the SLA.
    """

    tenants: int
    clients: int


def fit_boundary(points: Sequence[BoundaryPoint]) -> LinearLoadModel:
    """Least-squares fit of ``delta * clients + beta * tenants = 1``.

    Given boundary configurations (largest SLA-meeting client count per
    tenant count), solve for ``(delta, beta)`` minimizing
    ``sum((delta*c_i + beta*t_i - 1)^2)``.

    Raises
    ------
    CalibrationError
        If fewer than two distinct tenant counts are provided (the system
        would be under-determined) or the fit produces a non-physical
        model.
    """
    if len(points) < 2:
        raise CalibrationError(
            "need at least two boundary points to fit delta and beta")
    tenant_counts = {p.tenants for p in points}
    if len(tenant_counts) < 2:
        raise CalibrationError(
            "boundary points must cover at least two tenant counts to "
            "separate delta from beta")
    a = np.array([[p.clients, p.tenants] for p in points], dtype=np.float64)
    b = np.ones(len(points), dtype=np.float64)
    (delta, beta), *_ = np.linalg.lstsq(a, b, rcond=None)
    if delta <= 0:
        raise CalibrationError(
            f"fit produced non-positive delta = {delta:.6g}; the measured "
            f"boundary is not consistent with a linear load model")
    beta = max(float(beta), 0.0)
    return LinearLoadModel(delta=float(delta), beta=beta)


#: Default model used by the placement side of the cluster experiments.
#:
#: Three boundaries matter, and they differ:
#:
#: * The *single-machine* SLA boundary, which
#:   ``repro.cluster.calibration`` measures at delta ≈ 0.0186,
#:   beta ≈ 0.0086 — i.e. C ≈ 52-53 clients, the paper's reported
#:   operating point.  This is what the paper's Section IV procedure
#:   yields.
#: * The *replicated-deployment* boundary: a hot server in a replicated
#:   cluster crosses the 5 s p99 at ~32-36 client-equivalents, well
#:   below C.  Closed-loop clients whose other queries complete quickly
#:   on lightly loaded sibling replicas keep issuing at a high rate, so
#:   an overloaded replica loses the self-throttling that protects a
#:   single saturated machine.
#: * The *placement* model: what the consolidation algorithm prices
#:   tenants at.  It must be at least as conservative as the replicated
#:   boundary or a worst-case failover lands beyond the SLA.
#:
#: The shipped default prices one modeled unit of load at ~38
#: client-equivalents (delta = 0.024, beta = 0.0125): conservative
#: enough that a worst-case single failure keeps every server at a
#: ~4.0-4.3 s p99 (the paper's 1-failure bars), while the *second*
#: simultaneous failure — which only gamma = 3 reserves for — pushes
#: unprotected survivors past the 5 s line.  The zipfian normalization
#: constant stays C = 52 (a property of one machine, as in the paper).
DEFAULT_LOAD_MODEL = LinearLoadModel(delta=0.024, beta=0.0125)
