"""Unit tests for the deterministic failpoint framework."""

import pytest

from repro import faults
from repro.errors import ConfigurationError, FaultInjected, SimulatedCrash
from repro.faults import (ACTIONS, CATALOG, FAILPOINTS, FailpointPolicy,
                          FailpointRegistry, activate_from_env,
                          format_spec, parse_spec, parse_specs)

POINT = "algo.place"  # any catalogued name works for registry tests


class TestPolicyValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FailpointPolicy(action="explode")

    @pytest.mark.parametrize("field,value", [
        ("after_hits", 0), ("max_fires", 0),
        ("probability", 0.0), ("probability", 1.5), ("seconds", -1.0),
    ])
    def test_out_of_range_fields_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            FailpointPolicy(**{field: value})

    def test_probabilistic_without_seed_rejected(self):
        """There is no nondeterministic mode."""
        with pytest.raises(ConfigurationError):
            FailpointPolicy(probability=0.5)
        FailpointPolicy(probability=0.5, seed=1)  # with a seed: fine

    def test_all_actions_constructible(self):
        for action in ACTIONS:
            FailpointPolicy(action=action)


class TestRegistry:
    def test_unknown_name_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(ConfigurationError):
            registry.activate("store.wal.appnd")  # typo must not no-op

    def test_policy_and_kwargs_mutually_exclusive(self):
        registry = FailpointRegistry()
        with pytest.raises(ConfigurationError):
            registry.activate(POINT, FailpointPolicy(), action="raise")

    def test_fire_raises_typed_error_with_failpoint(self):
        registry = FailpointRegistry()
        registry.activate(POINT, action="raise")
        with pytest.raises(FaultInjected) as exc:
            registry.fire(POINT)
        assert exc.value.failpoint == POINT
        assert not isinstance(exc.value, SimulatedCrash)

    def test_crash_action_raises_simulated_crash(self):
        registry = FailpointRegistry()
        registry.activate(POINT, action="crash")
        with pytest.raises(SimulatedCrash):
            registry.fire(POINT)

    def test_inactive_point_is_noop(self):
        registry = FailpointRegistry()
        registry.fire(POINT)
        assert registry.should(POINT) is False
        assert registry.corrupt(POINT, "x") == "x"
        assert registry.fired_counts() == {}

    def test_max_fires_disarms(self):
        registry = FailpointRegistry()
        registry.activate(POINT, action="raise", max_fires=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                registry.fire(POINT)
        registry.fire(POINT)  # disarmed: no-op
        assert registry.fired(POINT) == 2
        assert not registry.is_active(POINT)

    def test_after_hits_skips_early_hits(self):
        registry = FailpointRegistry()
        registry.activate(POINT, action="raise", after_hits=3)
        registry.fire(POINT)
        registry.fire(POINT)
        with pytest.raises(FaultInjected):
            registry.fire(POINT)
        assert registry.fired(POINT) == 1

    def test_probability_is_seed_deterministic(self):
        def fired_pattern(seed):
            registry = FailpointRegistry()
            registry.activate(POINT, action="raise", probability=0.4,
                              seed=seed, max_fires=None)
            pattern = []
            for _ in range(40):
                try:
                    registry.fire(POINT)
                    pattern.append(0)
                except FaultInjected:
                    pattern.append(1)
            return pattern

        first = fired_pattern(7)
        assert first == fired_pattern(7)  # same seed, same hits fire
        assert 0 < sum(first) < 40       # actually probabilistic
        assert first != fired_pattern(8)

    def test_delay_sleeps_and_continues(self):
        import time
        registry = FailpointRegistry()
        registry.activate(POINT, action="delay", seconds=0.02)
        start = time.perf_counter()
        registry.fire(POINT)  # must not raise
        assert time.perf_counter() - start >= 0.015

    def test_reactivation_resets_hit_counter(self):
        registry = FailpointRegistry()
        registry.activate(POINT, action="raise", after_hits=2)
        registry.fire(POINT)  # hit 1 of 2
        registry.activate(POINT, action="raise", after_hits=2)
        registry.fire(POINT)  # hit 1 of 2 again: still silent
        with pytest.raises(FaultInjected):
            registry.fire(POINT)

    def test_injected_context_manager_disarms_on_exit(self):
        registry = FailpointRegistry()
        with registry.injected(POINT, action="raise", after_hits=99):
            assert registry.is_active(POINT)
        assert not registry.is_active(POINT)

    def test_global_helpers_route_to_global_registry(self):
        assert faults.active() is False
        with faults.injected(POINT, action="raise"):
            assert faults.active() is True
            with pytest.raises(FaultInjected):
                faults.fire(POINT)
        assert faults.active() is False
        assert FAILPOINTS.fired(POINT) == 1


class TestCorrupt:
    def test_default_mutators_are_deterministic(self):
        registry = FailpointRegistry()
        cases = [
            ("text", str), (True, bool), (7, int), (1.5, float),
            (b"\x00\xff", bytes), ({"a": 1, "b": 2}, dict),
            ([1, 2, 3, 4], list),
        ]
        for value, kind in cases:
            registry.activate(POINT, action="corrupt")
            mutated = registry.corrupt(POINT, value)
            assert isinstance(mutated, kind)
            assert mutated != value, f"{kind.__name__} not corrupted"

    def test_corrupted_string_is_valid_json_with_bad_seq(self):
        """A corrupted WAL line must be *detected*, never mistaken for
        a torn tail — so the default string mutator keeps valid JSON
        but carries an impossible sequence number."""
        import json
        registry = FailpointRegistry()
        registry.activate(POINT, action="corrupt")
        record = json.loads(registry.corrupt(POINT, '{"seq": 5}'))
        assert record["seq"] == -1

    def test_custom_mutator_wins(self):
        registry = FailpointRegistry()
        registry.activate(POINT, FailpointPolicy(
            action="corrupt", mutator=lambda v: "gone"))
        assert registry.corrupt(POINT, "anything") == "gone"

    def test_corrupt_policy_is_noop_at_fire_seams(self):
        registry = FailpointRegistry()
        registry.activate(POINT, action="corrupt")
        registry.fire(POINT)  # must not raise; still counts as a firing
        assert registry.fired(POINT) == 1


class TestSpecGrammar:
    def test_parse_minimal(self):
        name, policy = parse_spec("store.wal.append=raise")
        assert name == "store.wal.append"
        assert policy.action == "raise"
        assert policy.max_fires == 1  # specs arm one firing by default

    def test_parse_options_and_aliases(self):
        _, policy = parse_spec(
            "par.worker=crash:after=3:fires=2:p=0.5:seed=9")
        assert policy.after_hits == 3
        assert policy.max_fires == 2
        assert policy.probability == 0.5
        assert policy.seed == 9

    @pytest.mark.parametrize("bad", [
        "no-equals", "unknown.point=raise", "algo.place=explode",
        "algo.place=raise:bogus=1", "algo.place=raise:after=x",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_spec(bad)

    def test_parse_specs_list(self):
        parsed = parse_specs(
            "algo.place=raise, store.wal.fsync=crash:after=2,")
        assert [name for name, _ in parsed] == \
            ["algo.place", "store.wal.fsync"]

    @pytest.mark.parametrize("spec", [
        "algo.place=raise",
        "store.wal.torn_tail=crash:after_hits=4:max_fires=2",
        "par.worker=raise:probability=0.25:seed=3",
        "algo.remove=delay:seconds=0.5",
    ])
    def test_format_round_trips(self, spec):
        name, policy = parse_spec(spec)
        assert parse_spec(format_spec(name, policy)) == (name, policy)


class TestEnvActivation:
    def test_env_arms_listed_points(self):
        registry = FailpointRegistry()
        armed = activate_from_env(registry, environ={
            faults.FAULTS_ENV_VAR:
                "algo.place=raise,store.wal.fsync=crash:after=2"})
        assert armed == ["algo.place", "store.wal.fsync"]
        assert registry.policy("store.wal.fsync").after_hits == 2

    def test_empty_env_arms_nothing(self):
        registry = FailpointRegistry()
        assert activate_from_env(registry, environ={}) == []
        assert registry.active_names() == []

    def test_bad_env_spec_is_loud(self):
        with pytest.raises(ConfigurationError):
            activate_from_env(FailpointRegistry(), environ={
                faults.FAULTS_ENV_VAR: "typo.point=raise"})


class TestCatalog:
    def test_every_name_has_a_seam_description(self):
        for name, description in CATALOG.items():
            assert description
            prefix = name.split(".")[0]
            assert prefix in ("algo", "store", "par", "cluster",
                              "array_core", "serve", "fleet")

    def test_obs_counters_mirror_firings(self):
        from repro.obs import MetricsRegistry
        registry = FailpointRegistry()
        obs = MetricsRegistry()
        registry.attach_obs(obs)
        registry.activate(POINT, action="raise", max_fires=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                registry.fire(POINT)
        assert obs.counter("faults.fired").value == 2
        assert obs.counter(f"faults.{POINT}").value == 2
