"""Analysis: Theorem 2 machinery, statistics, cost model."""

from .weights import (replica_weight, tenant_weight, total_weight,
                      tiny_weight_density, placement_bin_weights,
                      count_underweight_bins)
from .competitive import (competitive_ratio_upper_bound, ratio_sweep,
                          paper_reference_ratio, PAPER_RATIOS, WorstBin,
                          ONLINE_LOWER_BOUND, adversarial_sequence)
from .stats import (mean, sample_std, percentile, p99,
                    confidence_interval_95, ConfidenceInterval,
                    relative_difference_percent, Z_95)
from .cost import CostModel, C4_4XLARGE_HOURLY_USD, HOURS_PER_YEAR
from .report import (Table, figure5_table, figure6_table, table1_table,
                     theorem2_table)
from .diagnostics import explain, PackingReport, ServerBreakdown
from .optimum import (OptimumResult, SearchBudget, branch_and_bound_optimum,
                      brute_force_optimum, certified_lower_bound,
                      assignment_to_placement, BRUTE_FORCE_MAX_TENANTS)
from .sla import (SlaPolicy, DEFAULT_POLICY, p_violate, p_violate_curve,
                  cheapest_gamma, gamma_map)

__all__ = [
    "replica_weight", "tenant_weight", "total_weight",
    "tiny_weight_density", "placement_bin_weights",
    "count_underweight_bins", "competitive_ratio_upper_bound", "ratio_sweep",
    "paper_reference_ratio", "PAPER_RATIOS", "WorstBin",
    "adversarial_sequence",
    "ONLINE_LOWER_BOUND", "mean",
    "sample_std", "percentile", "p99", "confidence_interval_95",
    "ConfidenceInterval", "relative_difference_percent", "Z_95",
    "CostModel", "C4_4XLARGE_HOURLY_USD", "HOURS_PER_YEAR",
    "Table", "figure5_table", "figure6_table", "table1_table",
    "theorem2_table", "explain", "PackingReport", "ServerBreakdown",
    "OptimumResult", "SearchBudget", "branch_and_bound_optimum",
    "brute_force_optimum", "certified_lower_bound",
    "assignment_to_placement", "BRUTE_FORCE_MAX_TENANTS",
    "SlaPolicy", "DEFAULT_POLICY", "p_violate", "p_violate_curve",
    "cheapest_gamma", "gamma_map",
]
