"""Unit tests for trace/placement serialization."""

import pytest

from repro.core.cubefit import CubeFit
from repro.core.tenant import TenantSequence, make_tenants
from repro.core.validation import audit
from repro.workloads.trace_io import (load_placement, load_trace,
                                      save_placement, save_trace)
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence
from repro.errors import ConfigurationError


@pytest.fixture
def sequence():
    return generate_sequence(UniformLoad(0.5), 40, seed=3)


class TestTraceRoundtrip:
    def test_roundtrip_preserves_sequence(self, sequence, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(sequence, path)
        loaded = load_trace(path)
        assert loaded.loads == sequence.loads
        assert [t.tenant_id for t in loaded] == \
            [t.tenant_id for t in sequence]
        assert loaded.seed == sequence.seed
        assert loaded.description == sequence.description

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-trace", "version": 99}')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope.json")


class TestPlacementRoundtrip:
    def test_roundtrip_preserves_assignment(self, sequence, tmp_path):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(sequence)
        trace_path = tmp_path / "trace.json"
        placement_path = tmp_path / "placement.json"
        save_trace(sequence, trace_path)
        save_placement(algo.placement, placement_path,
                       algorithm="cubefit")
        restored = load_placement(placement_path, load_trace(trace_path))
        assert restored.snapshot() == algo.placement.snapshot()
        assert restored.gamma == 2
        # The reconstructed placement carries full shared-load state.
        assert audit(restored).ok == audit(algo.placement).ok

    def test_placement_with_unknown_tenant_rejected(self, sequence,
                                                    tmp_path):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(sequence)
        placement_path = tmp_path / "placement.json"
        save_placement(algo.placement, placement_path)
        truncated = TenantSequence(tenants=make_tenants([0.5]))
        with pytest.raises(ConfigurationError):
            load_placement(placement_path, truncated)

    def test_replica_index_validation(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            '{"format": "repro-placement", "version": 1, "gamma": 2,'
            ' "algorithm": "x", "servers": {"0": [[0, 0]], '
            '"1": [[0, 0]]}}')
        seq = TenantSequence(tenants=make_tenants([0.4]))
        with pytest.raises(Exception):
            load_placement(path, seq)
