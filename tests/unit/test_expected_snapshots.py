"""Snapshot regression tests against committed expected outputs.

Theorem 2's sweep is pure exact arithmetic — any change to its values
is either a bug or an intentional analysis change that must be made
consciously (regenerate ``benchmarks/expected/theorem2.csv`` via the
snippet in this file's docstring)::

    python - <<'EOF'
    from repro.sim.figures import theorem2
    from repro.analysis.report import theorem2_table
    theorem2_table(theorem2()).to_csv("benchmarks/expected/theorem2.csv")
    EOF

The golden packings pin the exact replica-to-server assignment CUBEFIT
and RFI produce for the benchmark's 2k-tenant sequence: any change to
candidate ordering, feasibility screening or the array core that moves
even one replica changes the per-server tenant-set hash.  Regenerate
``benchmarks/expected/packings_2k.json`` consciously via::

    PYTHONPATH=src python - <<'EOF'
    import json
    from tests.unit.test_expected_snapshots import _packing_snapshot
    print(json.dumps({name: _packing_snapshot(name)
                      for name in ("cubefit", "rfi")}, indent=2))
    EOF

The SLA curves pin the closed-form violation model and the gamma menu
it implies: a drift in ``p_violate`` silently re-prices every tenant's
replication factor, so any change must be a conscious one.  Regenerate
``benchmarks/expected/sla_gamma.json`` via::

    PYTHONPATH=src python - <<'EOF'
    import json
    from tests.unit.test_expected_snapshots import _sla_snapshot
    print(json.dumps(_sla_snapshot(), indent=2))
    EOF
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.report import theorem2_table
from repro.sim.bench import (BENCH_DISTRIBUTION_MAX, BENCH_SEED,
                             FACTORIES, UniformLoad, generate_sequence)
from repro.sim.figures import theorem2

_EXPECTED_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "expected"
EXPECTED = _EXPECTED_DIR / "theorem2.csv"
EXPECTED_PACKINGS = _EXPECTED_DIR / "packings_2k.json"

SNAPSHOT_TENANTS = 2000


def test_theorem2_sweep_matches_snapshot():
    result = theorem2()
    fresh = theorem2_table(result).to_csv()
    assert fresh == EXPECTED.read_text(), (
        "Theorem 2 sweep changed; if intentional, regenerate "
        "benchmarks/expected/theorem2.csv"
    )


def _packing_snapshot(name: str) -> dict:
    """Server count + a digest of each server's tenant set for the
    benchmark scenario at 2k tenants."""
    algo = FACTORIES[name]()
    algo.consolidate(generate_sequence(
        UniformLoad(BENCH_DISTRIBUTION_MAX), SNAPSHOT_TENANTS,
        seed=BENCH_SEED))
    placement = algo.placement
    digest = hashlib.sha256()
    for sid in sorted(placement.server_ids):
        tenants = sorted({tid for tid, _
                          in placement.server(sid).replicas})
        digest.update(f"{sid}:{tenants}\n".encode())
    return {
        "tenants": SNAPSHOT_TENANTS,
        "servers": placement.num_servers,
        "tenant_sets_sha256": digest.hexdigest(),
    }


@pytest.mark.parametrize("name", ["cubefit", "rfi"])
def test_golden_packing_matches_snapshot(name):
    expected = json.loads(EXPECTED_PACKINGS.read_text())
    assert _packing_snapshot(name) == expected[name], (
        f"the {name} packing for the benchmark 2k sequence changed; "
        "if intentional, regenerate benchmarks/expected/"
        "packings_2k.json (snippet in this file's docstring)"
    )


EXPECTED_SLA = _EXPECTED_DIR / "sla_gamma.json"

SLA_GRID = [round(0.05 * i, 2) for i in range(1, 20)]
SLA_TARGETS = (0.05, 0.01, 0.001)


def _sla_snapshot() -> dict:
    """Violation-probability curves and gamma selections over a load
    grid, under the default policy (pure closed-form arithmetic)."""
    from repro.analysis.sla import (DEFAULT_POLICY, gamma_map,
                                    p_violate_curve)
    return {
        "policy": {
            "failure_prob": DEFAULT_POLICY.failure_prob,
            "overload": DEFAULT_POLICY.overload,
            "gammas": list(DEFAULT_POLICY.gammas),
        },
        "load_grid": SLA_GRID,
        "p_violate": {str(g): p_violate_curve(SLA_GRID, g)
                      for g in DEFAULT_POLICY.gammas},
        "gamma_map": {str(t): [gamma_map([(0, load)], t)[0]
                               for load in SLA_GRID]
                      for t in SLA_TARGETS},
    }


def test_sla_curves_match_snapshot():
    expected = json.loads(EXPECTED_SLA.read_text())
    assert _sla_snapshot() == expected, (
        "the SLA violation model changed; if intentional, regenerate "
        "benchmarks/expected/sla_gamma.json (snippet in this file's "
        "docstring)"
    )
