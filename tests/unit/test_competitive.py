"""Unit tests for the Theorem 2 competitive-ratio solver."""

from fractions import Fraction

import pytest

from repro.analysis.competitive import (ONLINE_LOWER_BOUND, PAPER_RATIOS,
                                        WorstBin,
                                        competitive_ratio_upper_bound,
                                        paper_reference_ratio, ratio_sweep)
from repro.errors import ConfigurationError


class TestBoundValues:
    def test_gamma2_large_k_matches_paper(self):
        """Paper: the gamma=2 bound approaches 1.59 for large K; the
        exact solver gives 1.5983 at K=211 (alpha_K = 14)."""
        bound = competitive_ratio_upper_bound(2, 211)
        assert float(bound.value) == pytest.approx(1.5983, abs=1e-3)

    def test_gamma3_large_k_near_paper(self):
        """Paper reports 1.625; our exact supremum at K=211 is ~1.636
        (the worst bin m1=m2=1, m8=1 weighs exactly 1.625 and tiny fill
        adds a sliver — see EXPERIMENTS.md)."""
        bound = competitive_ratio_upper_bound(3, 211)
        assert 1.62 <= float(bound.value) <= 1.65

    def test_worst_bin_gamma2(self):
        """The adversarial bin is m_1 = 1, m_2 = 1 plus tiny fill."""
        bound = competitive_ratio_upper_bound(2, 211)
        assert bound.counts.get(1) == 1
        assert bound.counts.get(2) == 1
        assert bound.tiny_size > 0

    def test_bound_decreases_with_k(self):
        values = [competitive_ratio_upper_bound(2, k).value
                  for k in (21, 43, 91, 211)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_bound_exceeds_online_lower_bound(self):
        bound = competitive_ratio_upper_bound(2, 91)
        assert float(bound.value) > ONLINE_LOWER_BOUND

    def test_exact_arithmetic(self):
        bound = competitive_ratio_upper_bound(2, 133)
        assert isinstance(bound.value, Fraction)
        # K=133 -> alpha_K=11 (11*12=132 < 133) -> density 12/10; worst
        # bin m_1=m_2=1 with tiny leftover 1/12: 3/2 + (1/12)*(6/5) = 8/5.
        assert bound.value == Fraction(8, 5)

    def test_last_class_policy_small_k(self):
        bound = competitive_ratio_upper_bound(2, 10, "last-class")
        assert 1.5 < float(bound.value) < 1.8

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            competitive_ratio_upper_bound(1, 10)
        with pytest.raises(ConfigurationError):
            competitive_ratio_upper_bound(2, 1)


class TestSweepAndReferences:
    def test_sweep_skips_undefined_k(self):
        # K=10 is invalid for gamma=3 alpha policy; sweep must skip it.
        out = ratio_sweep(3, [10, 31], "alpha")
        assert [k for k, _ in out] == [31]

    def test_paper_reference_ratio(self):
        assert paper_reference_ratio(2) == 1.59
        assert paper_reference_ratio(3) == 1.625
        assert set(PAPER_RATIOS) == {2, 3}
        with pytest.raises(ConfigurationError):
            paper_reference_ratio(4)

    def test_worst_bin_str(self):
        text = str(competitive_ratio_upper_bound(2, 21))
        assert "WorstBin" in text
