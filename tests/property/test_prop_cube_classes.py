"""Property-based tests of cube addressing and size classes."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.classes import SizeClassifier
from repro.core.cube import ClassCubes, from_digits, rotate_right, to_digits


@given(value=st.integers(min_value=0, max_value=10_000),
       base=st.integers(min_value=2, max_value=9),
       extra_width=st.integers(min_value=0, max_value=3))
@settings(max_examples=100)
def test_digit_roundtrip(value, base, extra_width):
    width = 1
    while base ** width <= value:
        width += 1
    width += extra_width
    assert from_digits(to_digits(value, base, width), base) == value


@given(digits=st.lists(st.integers(min_value=0, max_value=5),
                       min_size=1, max_size=6),
       shifts=st.integers(min_value=0, max_value=12))
@settings(max_examples=100)
def test_rotation_is_cyclic_group(digits, shifts):
    digits = tuple(digits)
    n = len(digits)
    assert rotate_right(digits, shifts) == rotate_right(digits, shifts % n)
    assert rotate_right(rotate_right(digits, 1), n - 1) == digits


@given(tau=st.integers(min_value=1, max_value=4),
       gamma=st.sampled_from([2, 3]))
@settings(max_examples=30, deadline=None)
def test_cube_addressing_is_bijective(tau, gamma):
    """Every (group, bin, slot) triple is used exactly once per
    generation — no slot collisions, no waste."""
    cubes = ClassCubes(tau=tau, gamma=gamma)
    seen = set()
    for _ in range(cubes.period):
        for addr in cubes.current_addresses():
            seen.add((addr.group, addr.bin_index, addr.slot))
        cubes.advance()
    assert len(seen) == gamma * tau ** gamma


@given(tau=st.integers(min_value=2, max_value=4),
       gamma=st.sampled_from([2, 3]))
@settings(max_examples=20, deadline=None)
def test_lemma1_property(tau, gamma):
    """No two bins host replicas of more than one common tenant."""
    cubes = ClassCubes(tau=tau, gamma=gamma)
    bins_of = {}
    for tenant in range(cubes.period):
        bins_of[tenant] = {(a.group, a.bin_index)
                           for a in cubes.current_addresses()}
        cubes.advance()
    for a, b in itertools.combinations(bins_of, 2):
        assert len(bins_of[a] & bins_of[b]) <= 1


@given(size=st.floats(min_value=1e-6, max_value=0.5,
                      allow_nan=False, allow_infinity=False),
       gamma=st.sampled_from([2, 3]),
       num_classes=st.integers(min_value=2, max_value=15))
@settings(max_examples=150)
def test_classification_respects_bounds(size, gamma, num_classes):
    classifier = SizeClassifier(num_classes=num_classes, gamma=gamma)
    if size > 1.0 / gamma:
        return  # not a valid replica size for this gamma
    tau = classifier.replica_class(size)
    lo, hi = classifier.class_bounds(tau)
    assert lo - 1e-9 <= size <= hi + 1e-9


@given(gamma=st.sampled_from([2, 3]),
       num_classes=st.integers(min_value=2, max_value=20))
@settings(max_examples=60)
def test_classes_partition_the_size_range(gamma, num_classes):
    """Class intervals tile (0, 1/gamma] without gaps or overlaps."""
    classifier = SizeClassifier(num_classes=num_classes, gamma=gamma)
    bounds = [classifier.class_bounds(tau)
              for tau in range(1, num_classes + 1)]
    # Descending order of sizes: class 1 is the largest.
    assert bounds[0][1] == 1.0 / gamma
    for (lo_prev, _hi_prev), (_lo_next, hi_next) in zip(bounds,
                                                        bounds[1:]):
        assert abs(lo_prev - hi_next) < 1e-12
    assert bounds[-1][0] == 0.0
