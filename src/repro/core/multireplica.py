"""Multi-replica aggregation for tiny (class-``K``) tenants.

Tiny replicas — those no larger than ``1/(K+gamma-1)`` — are too small to
justify a slot each, so CUBEFIT coalesces them: the ``j``-th replicas of
consecutive tiny tenants are appended to the ``j``-th *active
multi-replica* until adding one more would push the multi-replica past a
size threshold; then the multi-replica is *sealed* and a fresh one is
created.  The ``gamma`` active multi-replicas always contain replicas of
exactly the same tenants, so a multi-replica behaves exactly like one
replica of a larger tenant and is routed through the cube machinery of a
*target class*:

* ``"alpha"`` policy (theory):   threshold ``1/alpha_K``, target class
  ``alpha_K - gamma + 1``;
* ``"last-class"`` policy (the paper's experiments): threshold equal to
  the class-``(K-1)`` slot size ``1/(K+gamma-2)``, target class ``K-1``.

A bin hosting an *unsealed* multi-replica is withheld from CUBEFIT's
first stage (not reported mature) because the multi-replica may still
grow into space the m-fit check would otherwise hand out; sealing
releases the bin.  This conservative rule preserves Theorem 1 without
extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from .classes import SizeClassifier
from .config import CubeFitConfig, TINY_POLICY_ALPHA
from .tenant import LOAD_EPS


@dataclass
class MultiReplica:
    """A group of co-located tiny replicas treated as one replica.

    ``server_ids[j]`` hosts the ``j``-th copy; all copies contain replicas
    of the same tenants (one replica each), so ``size`` — the per-copy
    load — is the sum of the member replicas' loads.
    """

    server_ids: Tuple[int, ...]
    size: float = 0.0
    tenant_ids: List[int] = field(default_factory=list)
    sealed: bool = False

    def add(self, tenant_id: int, replica_load: float) -> None:
        if self.sealed:
            raise ConfigurationError(
                "cannot add replicas to a sealed multi-replica")
        self.tenant_ids.append(tenant_id)
        self.size += replica_load

    def remove(self, tenant_id: int, replica_load: float) -> None:
        """Handle a member tenant's departure.

        Allowed on sealed multi-replicas too (the space is simply freed
        on the host bins); on the *active* multi-replica the shrunken
        size lets future tiny replicas take the departed tenant's place.
        """
        try:
            self.tenant_ids.remove(tenant_id)
        except ValueError:
            raise ConfigurationError(
                f"tenant {tenant_id} is not part of this multi-replica"
            ) from None
        self.size = max(0.0, self.size - replica_load)

    def __len__(self) -> int:
        return len(self.tenant_ids)


class MultiReplicaPolicy:
    """Derives the threshold/target class for a tiny policy."""

    def __init__(self, config: CubeFitConfig) -> None:
        classifier = SizeClassifier(num_classes=config.num_classes,
                                    gamma=config.gamma)
        if config.tiny_policy == TINY_POLICY_ALPHA:
            alpha = classifier.alpha()
            if alpha < config.gamma:
                # CubeFitConfig validates this, but guard against direct
                # construction with inconsistent parameters.
                raise ConfigurationError(
                    f"alpha_K = {alpha} < gamma = {config.gamma}; the "
                    f"'alpha' tiny policy is undefined for this K")
            #: Maximum per-copy size of a multi-replica.
            self.threshold = 1.0 / alpha
            #: Class whose cube machinery places the multi-replicas.
            self.target_class = alpha - config.gamma + 1
        else:
            self.target_class = config.num_classes - 1
            self.threshold = classifier.slot_size(self.target_class)
        # Sanity: a multi-replica must fit in its slot.
        slot = classifier.slot_size(self.target_class)
        if self.threshold > slot + LOAD_EPS:
            raise ConfigurationError(
                f"multi-replica threshold {self.threshold} exceeds the "
                f"target class {self.target_class} slot size {slot}")

    def fits(self, active: Optional[MultiReplica],
             replica_load: float) -> bool:
        """Whether ``replica_load`` still fits in the active multi-replica.

        Mirrors the paper: the replica is added unless that would make the
        multi-replica larger than the threshold.
        """
        if active is None or active.sealed:
            return False
        return active.size + replica_load <= self.threshold + LOAD_EPS
