"""Benchmark E3 — Table I: yearly cost savings of CUBEFIT over RFI.

Regenerates the paper's Table I at the active scale and extrapolates
the absolute columns to the paper's 50,000 tenants:

    Distribution | RFI Servers | CubeFit Saved | Dollar Savings
    Uniform      | 10,951      | 2,506         | $18,045,004
    Zipfian      |  2,218      |   496         |  $3,571,557

The uniform population is DiscreteUniform(1..15 clients)/52 and the
zipfian population Zipf(3) over (1..52)/52, both priced at EC2
c4.4xlarge's $0.822/hour, year-round.
"""

import pytest

from repro.sim.figures import table1


@pytest.fixture(scope="module")
def table1_result(scale):
    return table1(scale=scale, base_seed=0)


def test_table1_benchmark(benchmark, scale):
    result = benchmark.pedantic(
        lambda: table1(scale=scale, base_seed=0), rounds=1, iterations=1)
    print()
    print(result)


class TestTable1Shape:
    def rows(self, result):
        return {r.distribution: r for r in result.rows()}

    def test_uniform_rfi_servers_near_paper(self, table1_result):
        """Paper: 10,951 RFI servers at 50k tenants (ours: ~11.5k)."""
        row = self.rows(table1_result)["Uniform"]
        assert 8_000 <= row.rfi_servers_50k <= 14_000

    def test_uniform_savings_near_paper(self, table1_result):
        """Paper: 2,506 servers saved => ~$18.0M/yr (ours: ~$18.3M)."""
        row = self.rows(table1_result)["Uniform"]
        assert 1_700 <= row.servers_saved_50k <= 3_300
        assert 12e6 <= row.yearly_savings_usd_50k <= 25e6

    def test_zipfian_rfi_servers_near_paper(self, table1_result):
        """Paper: 2,218 RFI servers at 50k tenants (ours: ~2.1k)."""
        row = self.rows(table1_result)["Zipfian"]
        assert 1_500 <= row.rfi_servers_50k <= 3_000

    def test_zipfian_savings_near_paper(self, table1_result):
        """Paper: 496 servers saved => ~$3.57M/yr (ours: ~$3.1M)."""
        row = self.rows(table1_result)["Zipfian"]
        assert 300 <= row.servers_saved_50k <= 700
        assert 2e6 <= row.yearly_savings_usd_50k <= 5.5e6

    def test_dollar_arithmetic(self, table1_result):
        for row in table1_result.rows():
            assert row.yearly_savings_usd == pytest.approx(
                row.servers_saved * 0.822 * 8760, rel=1e-9)
