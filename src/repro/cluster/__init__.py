"""Cluster substrate: discrete-event simulation of the paper's testbed."""

from .engine import Simulator, EventHandle
from .machine import Machine, DEFAULT_CORES
from .background import (MaintenanceTask, DEFAULT_MAINTENANCE_DEMAND,
                         DEFAULT_MAINTENANCE_INTERVAL)
from .datastore import DataStore, DEFAULT_COLD_PENALTY, DEFAULT_WARM_AFTER
from .routing import ReplicaRouter
from .client import TenantClient, DEFAULT_THINK_MEAN
from .latency import (LatencyRecorder, LatencySample, DEFAULT_SLA_SECONDS,
                      SLA_PERCENTILE)
from .failures import (FailurePlan, worst_overload_failures,
                       project_client_counts, EXHAUSTIVE_LIMIT)
from .experiment import (ClusterConfig, ClusterResult, ClusterExperiment,
                         PAPER_WARMUP, PAPER_MEASURE)
from .calibration import (CalibrationResult, calibrate_load_model,
                          find_boundary_clients, measure_p99)

__all__ = [
    "Simulator", "EventHandle", "Machine", "DEFAULT_CORES", "DataStore",
    "DEFAULT_COLD_PENALTY", "DEFAULT_WARM_AFTER", "ReplicaRouter",
    "TenantClient", "DEFAULT_THINK_MEAN", "LatencyRecorder",
    "LatencySample", "DEFAULT_SLA_SECONDS", "SLA_PERCENTILE",
    "FailurePlan", "worst_overload_failures", "project_client_counts",
    "EXHAUSTIVE_LIMIT", "ClusterConfig", "ClusterResult",
    "ClusterExperiment", "PAPER_WARMUP", "PAPER_MEASURE",
    "CalibrationResult", "calibrate_load_model", "find_boundary_clients",
    "measure_p99", "MaintenanceTask", "DEFAULT_MAINTENANCE_DEMAND",
    "DEFAULT_MAINTENANCE_INTERVAL",
]
