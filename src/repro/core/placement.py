"""Placement state with exact shared-load accounting.

This module is the substrate every consolidation algorithm builds on.  It
tracks, incrementally and exactly:

* which server hosts which replica,
* per-server load (the bin *level*),
* the pairwise **shared load** ``|S_i ∩ S_j|`` — the total load of
  replicas on ``S_i`` whose tenant also has a replica on ``S_j``.

The paper's robustness condition (Section II) is expressed directly in
these terms: a packing tolerates any ``f`` simultaneous server failures
iff for every server ``S_i`` and every set ``S*`` of at most ``f`` other
servers::

    |S_i| + sum(|S_i ∩ S_j| for S_j in S*) <= 1

Because shared loads are non-negative, the worst ``f``-subset for a given
server is simply its ``f`` largest shared-load partners, which makes the
audit linear-time per server.

On top of the exact shared-load index the state maintains an
**incremental slack index**: each server's worst-case failover load is
memoized and invalidated only when that server's shared-load set can
have changed — on :meth:`place` / :meth:`unplace` that is the target
server plus the tenant's sibling servers.  Consumers that keep their own
per-server derived data (the validator's
:class:`~repro.core.validation.IncrementalAuditor`, the algorithms'
:class:`~repro.algorithms.base.ServerIndex`) subscribe to the same
invalidation stream through :meth:`dirty_tracker`, so after each
placement they re-evaluate ``O(affected servers)`` instead of the whole
fleet.

Because a cache like this is only as good as its invalidation, a
**shadow-audit** mode (``REPRO_SHADOW_AUDIT=1`` or
``PlacementState(shadow_audit=True)``) cross-checks every served value
against a from-scratch recomputation of the shared-load sets and raises
:class:`~repro.errors.ShadowAuditError` on any divergence.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, \
    Set, Tuple

from ..errors import ConfigurationError, PlacementError, ShadowAuditError
from . import arrays as _arrays
from .server import Server, UNIT_CAPACITY
from .tenant import LOAD_EPS, Replica, Tenant

ReplicaKey = Tuple[int, int]

#: Absolute tolerance for shadow-audit comparisons.  The incremental
#: shared-load index accumulates float add/subtract round-off that a
#: fresh summation does not, so exact equality is too strict.
SHADOW_EPS = 1e-6


def _shadow_audit_default() -> bool:
    """Whether the ``REPRO_SHADOW_AUDIT`` environment flag is set."""
    return os.environ.get("REPRO_SHADOW_AUDIT", "").strip().lower() \
        not in ("", "0", "false", "no", "off")


class DirtyTracker:
    """One consumer's view of which servers changed since its last drain.

    Obtained from :meth:`PlacementState.dirty_tracker`.  Every mutation
    of the placement adds the affected server ids (the mutated server
    plus the tenant's sibling servers, whose shared-load sets changed
    too) to every live tracker.  A consumer periodically calls
    :meth:`drain` and re-derives its per-server data for exactly those
    ids.  A fresh tracker starts with every existing server dirty, so a
    late-subscribing consumer sees the full fleet once and increments
    afterwards.
    """

    __slots__ = ("_placement", "_dirty")

    def __init__(self, placement: "PlacementState") -> None:
        self._placement = placement
        self._dirty: Set[int] = set(placement._servers)

    def drain(self) -> Set[int]:
        """Return and clear the accumulated dirty server ids."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def peek(self) -> Set[int]:
        """The accumulated dirty ids, without clearing them."""
        return set(self._dirty)

    def mark(self, server_ids: Iterable[int]) -> None:
        """Force servers dirty (e.g. after consumer-side bookkeeping)."""
        self._dirty.update(server_ids)

    def close(self) -> None:
        """Unsubscribe from the placement's invalidation stream."""
        try:
            self._placement._trackers.remove(self)
        except ValueError:
            pass


class PlacementState:
    """Mutable assignment of replicas to servers.

    Parameters
    ----------
    gamma:
        Replication factor (replicas per tenant); typically 2 or 3.
    capacity:
        Per-server capacity; the paper normalizes this to 1.
    slack_cache:
        Memoize per-server worst-case failover loads, invalidating only
        the servers a mutation affects.  On by default; disable to get
        the naive recompute-every-time behaviour (benchmark baseline).
    shadow_audit:
        Cross-check every served worst-failover value against a
        from-scratch recomputation and raise
        :class:`~repro.errors.ShadowAuditError` on divergence.  Defaults
        to the ``REPRO_SHADOW_AUDIT`` environment flag.

    Notes
    -----
    All mutations go through :meth:`place` / :meth:`unplace` (or the
    tenant-level helpers :meth:`place_tenant` / :meth:`remove_tenant`) so
    the shared-load index stays consistent.  Algorithms must never touch
    :class:`~repro.core.server.Server` objects directly for mutation.
    """

    def __init__(self, gamma: int, capacity: float = UNIT_CAPACITY,
                 slack_cache: bool = True,
                 shadow_audit: Optional[bool] = None) -> None:
        if gamma < 1:
            raise ConfigurationError(f"gamma must be >= 1, got {gamma}")
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}")
        self.gamma = gamma
        self.capacity = capacity
        self._servers: Dict[int, Server] = {}
        self._next_server_id = 0
        #: symmetric shared-load index: shared[a][b] == |S_a ∩ S_b|
        self._shared: Dict[int, Dict[int, float]] = {}
        #: tenant_id -> {replica index -> server id}
        self._tenant_servers: Dict[int, Dict[int, int]] = {}
        #: tenant_id -> tenant load (needed to rebuild shares on removal)
        self._tenant_loads: Dict[int, float] = {}
        self._slack_cache_enabled = slack_cache
        #: server id -> {failure budget -> worst-case failover load}
        self._wfl_cache: Dict[int, Dict[int, float]] = {}
        #: server id -> {count -> top-``count`` (value, partner) pairs}
        self._top_cache: Dict[int, Dict[int, List[Tuple[float, int]]]] = {}
        #: Times :meth:`top_partners` had to recompute a top set (the
        #: memoization regression counter; probes between mutations of
        #: a server must not grow it).
        self.top_partner_recomputes = 0
        #: failure budget -> shared struct-of-arrays mirror
        self._array_cores: Dict[int, "_arrays.ArrayCore"] = {}
        #: Bumped by every load-*decreasing* mutation (:meth:`unplace`).
        #: live consumer handles fed by every mutation
        self._trackers: List[DirtyTracker] = []
        self.shadow_audit = _shadow_audit_default() \
            if shadow_audit is None else shadow_audit

    # ------------------------------------------------------------------
    # Slack-index plumbing
    # ------------------------------------------------------------------
    def _touch(self, server_ids: Iterable[int]) -> None:
        """Invalidate cached slack data for ``server_ids``.

        Called by every mutation with the servers whose load or
        shared-load set changed; feeds all subscribed dirty trackers.
        """
        ids = server_ids if type(server_ids) is tuple else tuple(server_ids)
        wfl_pop = self._wfl_cache.pop
        top_pop = self._top_cache.pop
        for sid in ids:
            wfl_pop(sid, None)
            top_pop(sid, None)
        for tracker in self._trackers:
            tracker._dirty.update(ids)

    def dirty_tracker(self) -> DirtyTracker:
        """Subscribe to the invalidation stream.

        Returns a :class:`DirtyTracker` that accumulates the ids of
        servers affected by subsequent mutations (pre-seeded with every
        existing server).  Call :meth:`DirtyTracker.close` when done so
        mutations stop paying for the subscription.
        """
        tracker = DirtyTracker(self)
        self._trackers.append(tracker)
        return tracker

    def set_slack_cache(self, enabled: bool) -> None:
        """Enable or disable worst-failover memoization at run time.

        Disabling restores the naive recompute-every-time behaviour
        (the benchmark baseline), so it also drops the top-partner memo.
        Registered array cores are *not* closed — a live
        :class:`~repro.algorithms.base.ServerIndex` owns them and they
        stay correct either way (refreshes assign from
        :meth:`worst_failover_load`, which now recomputes) — but
        :meth:`array_core` stops handing them to the probe paths, so
        naive-mode feasibility checks pay the full naive cost.
        """
        self._slack_cache_enabled = enabled
        if not enabled:
            self._wfl_cache.clear()
            self._top_cache.clear()

    def register_array_core(self, core: "_arrays.ArrayCore") -> None:
        """Publish ``core`` as this placement's mirror for its failure
        budget.

        Called by :class:`~repro.algorithms.base.ServerIndex` so the
        scalar probe path (:func:`~repro.algorithms.base
        .robust_after_placement`) reads the *same* vectors the index
        maintains — one set of arrays, synced by the index's own
        candidate queries, instead of duplicate bookkeeping per
        consumer.  A later registration for the same budget displaces
        the earlier one (index rebuilds on adoption).
        """
        self._array_cores[core.failures] = core

    def array_core(self, failures: int) -> Optional["_arrays.ArrayCore"]:
        """The registered struct-of-arrays mirror for one failure
        budget, or ``None``.

        ``None`` when no :class:`~repro.algorithms.base.ServerIndex`
        has registered a core for this budget, or when the array layer
        is gated off: the ``REPRO_ARRAY_CORE`` switch is off, the slack
        cache is disabled (naive mode must pay the naive recompute on
        every probe), or shadow auditing is on (every read must flow
        through the audited scalar path).
        """
        core = self._array_cores.get(failures)
        if core is None or self.shadow_audit \
                or not self._slack_cache_enabled \
                or not _arrays.enabled():
            return None
        return core

    @property
    def slack_cache_enabled(self) -> bool:
        return self._slack_cache_enabled

    # ------------------------------------------------------------------
    # Server inventory
    # ------------------------------------------------------------------
    def open_server(self) -> Server:
        """Provision a fresh, empty server and return it."""
        server = Server(server_id=self._next_server_id,
                        capacity=self.capacity)
        self._servers[server.server_id] = server
        self._shared[server.server_id] = {}
        self._next_server_id += 1
        self._touch((server.server_id,))
        return server

    def server(self, server_id: int) -> Server:
        """Look up a server by id."""
        try:
            return self._servers[server_id]
        except KeyError:
            raise PlacementError(f"no such server: {server_id}") from None

    @property
    def servers(self) -> List[Server]:
        """All provisioned servers, in id order."""
        return [self._servers[i] for i in sorted(self._servers)]

    @property
    def server_ids(self) -> List[int]:
        return sorted(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    @property
    def num_servers(self) -> int:
        """Number of provisioned servers (the objective to minimize)."""
        return len(self._servers)

    @property
    def num_nonempty_servers(self) -> int:
        """Servers currently hosting at least one replica."""
        return sum(1 for s in self._servers.values() if len(s) > 0)

    @property
    def num_tenants(self) -> int:
        return len(self._tenant_servers)

    # ------------------------------------------------------------------
    # Replica placement
    # ------------------------------------------------------------------
    def place(self, replica: Replica, server_id: int) -> None:
        """Host ``replica`` on server ``server_id``.

        Updates the shared-load index against every sibling replica of the
        same tenant that is already placed.
        """
        server = self._servers.get(server_id)
        if server is None:
            server = self.server(server_id)  # raises the canonical error
        tenant_id = replica.tenant_id
        siblings = self._tenant_servers.get(tenant_id)
        if siblings is not None and replica.index in siblings:
            raise PlacementError(
                f"replica {replica.key} is already placed on server "
                f"{siblings[replica.index]}")
        server.add(replica)  # validates capacity and tenant-distinctness
        load = replica.load
        if siblings:
            shared = self._shared
            shared_here = shared[server_id]
            here_get = shared_here.get
            for other_id in siblings.values():
                # Each replica of the tenant has the same load, so the
                # shared load grows symmetrically by one replica load on
                # both sides.
                shared_here[other_id] = here_get(other_id, 0.0) + load
                shared_other = shared[other_id]
                shared_other[server_id] = \
                    shared_other.get(server_id, 0.0) + load
            self._touch((server_id, *siblings.values()))
        else:
            self._touch((server_id,))
            if siblings is None:
                siblings = self._tenant_servers[tenant_id] = {}
                self._tenant_loads[tenant_id] = 0.0
        siblings[replica.index] = server_id
        self._tenant_loads[tenant_id] += load

    def unplace(self, replica_key: ReplicaKey, server_id: int) -> Replica:
        """Remove a replica (rollback support); inverse of :meth:`place`."""
        server = self.server(server_id)
        replica = server.remove(replica_key)
        tenant_id, index = replica_key
        siblings = self._tenant_servers[tenant_id]
        del siblings[index]
        shared_here = self._shared[server_id]
        for other_id in siblings.values():
            shared_here[other_id] -= replica.load
            if shared_here[other_id] <= LOAD_EPS:
                del shared_here[other_id]
            shared_other = self._shared[other_id]
            shared_other[server_id] -= replica.load
            if shared_other[server_id] <= LOAD_EPS:
                del shared_other[server_id]
        self._touch((server_id, *siblings.values()))
        self._tenant_loads[tenant_id] -= replica.load
        if not siblings:
            del self._tenant_servers[tenant_id]
            del self._tenant_loads[tenant_id]
        return replica

    def place_tenant(self, tenant: Tenant,
                     server_ids: Sequence[int]) -> None:
        """Place all ``gamma`` replicas of ``tenant`` at once.

        ``server_ids[j]`` receives replica ``j``.  The ids must be
        pairwise distinct and exactly ``gamma`` of them must be given.
        Atomic: on failure, successfully placed replicas are rolled back.
        """
        if len(server_ids) != self.gamma:
            raise PlacementError(
                f"tenant {tenant.tenant_id}: expected {self.gamma} target "
                f"servers, got {len(server_ids)}")
        if len(set(server_ids)) != len(server_ids):
            raise PlacementError(
                f"tenant {tenant.tenant_id}: target servers must be "
                f"distinct, got {server_ids}")
        placed: List[Tuple[ReplicaKey, int]] = []
        try:
            for replica, server_id in zip(tenant.replicas(self.gamma),
                                          server_ids):
                self.place(replica, server_id)
                placed.append((replica.key, server_id))
        except Exception:
            for key, server_id in reversed(placed):
                self.unplace(key, server_id)
            raise

    def remove_tenant(self, tenant_id: int) -> None:
        """Remove every replica of ``tenant_id`` from the placement."""
        try:
            siblings = dict(self._tenant_servers[tenant_id])
        except KeyError:
            raise PlacementError(
                f"tenant {tenant_id} is not placed") from None
        for index, server_id in siblings.items():
            self.unplace((tenant_id, index), server_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tenant_servers(self, tenant_id: int) -> Dict[int, int]:
        """Mapping ``replica index -> server id`` for a placed tenant."""
        return dict(self._tenant_servers.get(tenant_id, {}))

    def tenant_load(self, tenant_id: int) -> float:
        """Total placed load of the tenant (sum over placed replicas)."""
        return self._tenant_loads.get(tenant_id, 0.0)

    @property
    def tenant_ids(self) -> List[int]:
        return sorted(self._tenant_servers)

    def shared_load(self, a: int, b: int) -> float:
        """``|S_a ∩ S_b|``: load on ``a`` of tenants also replicated on ``b``."""
        return self._shared[a].get(b, 0.0)

    def shared_partners(self, server_id: int) -> Dict[int, float]:
        """All servers sharing at least one tenant with ``server_id``."""
        return dict(self._shared[server_id])

    def shared_partners_view(self, server_id: int) -> Dict[int, float]:
        """Live (uncopied) shared-load mapping of ``server_id``.

        The result aliases the internal index and mutates with the
        placement; callers must treat it as **read-only** and must not
        hold it across mutations.  Hot paths
        (:func:`~repro.algorithms.base.worst_shared_sum`) use this to
        avoid one dict copy per feasibility probe; everything else
        should prefer :meth:`shared_partners`.
        """
        try:
            return self._shared[server_id]
        except KeyError:
            raise PlacementError(f"no such server: {server_id}") from None

    def worst_failover_load(self, server_id: int,
                            failures: Optional[int] = None) -> float:
        """Upper bound on load redirected to ``server_id``.

        This is the paper's worst case over failure sets: the sum of the
        ``failures`` largest shared loads of the server (defaults to
        ``gamma - 1`` failures).  Memoized per ``(server, failures)``;
        the cache entry is dropped whenever the server's load or
        shared-load set changes, so serving a hit is O(1) and the cost
        of a mutation is O(affected servers), not O(fleet).
        """
        f = self.gamma - 1 if failures is None else failures
        if f <= 0:
            return 0.0
        if not self._slack_cache_enabled:
            value = self._compute_worst_failover(server_id, f)
        else:
            per_server = self._wfl_cache.get(server_id)
            if per_server is None:
                per_server = self._wfl_cache[server_id] = {}
            value = per_server.get(f)
            if value is None:
                value = per_server[f] = \
                    self._compute_worst_failover(server_id, f)
        if self.shadow_audit:
            self._shadow_check(server_id, f, value)
        return value

    def _compute_worst_failover(self, server_id: int, f: int) -> float:
        """Top-``f`` sum over the server's shared-load partners."""
        values = self._shared[server_id].values()
        if len(values) <= f:
            return sum(values)
        return sum(v for v, _ in self.top_partners(server_id, f))

    def top_partners(self, server_id: int,
                     count: int) -> List[Tuple[float, int]]:
        """The ``count`` largest shared loads as ``(value, partner)``
        pairs, value-descending.

        Memoized per ``(server, count)`` and invalidated through the
        same :meth:`_touch` stream as the worst-failover cache, so
        repeated ambiguous-band probes of an unmutated server reuse one
        top-set instead of re-heaping the partner dict every time
        (:attr:`top_partner_recomputes` counts the recomputations).
        Bypasses the memo while the slack cache is disabled.
        """
        shared = self._shared[server_id]
        if not self._slack_cache_enabled:
            self.top_partner_recomputes += 1
            return self._top_of(shared, count)
        per_server = self._top_cache.get(server_id)
        if per_server is None:
            per_server = self._top_cache[server_id] = {}
        entry = per_server.get(count)
        if entry is None:
            self.top_partner_recomputes += 1
            entry = per_server[count] = self._top_of(shared, count)
        return entry

    @staticmethod
    def _top_of(shared: Dict[int, float],
                count: int) -> List[Tuple[float, int]]:
        if count <= 0 or not shared:
            return []
        if count == 1:
            best_id, best = None, float("-inf")
            for other, value in shared.items():
                if value > best:
                    best, best_id = value, other
            return [(best, best_id)]
        pairs = ((value, other) for other, value in shared.items())
        if len(shared) <= count:
            return sorted(pairs, key=lambda pair: -pair[0])
        return heapq.nlargest(count, pairs)

    # ------------------------------------------------------------------
    # Shadow audit (falsifiability of the slack index)
    # ------------------------------------------------------------------
    def naive_shared_partners(self, server_id: int) -> Dict[int, float]:
        """Shared-load partners rebuilt from the raw replica sets.

        Ignores both the incremental ``_shared`` index and the slack
        cache: walks the server's replicas and their siblings' homes.
        This is the ground truth the shadow audit compares against.
        """
        server = self.server(server_id)
        shared: Dict[int, float] = {}
        for (tenant_id, _index), replica in server.replicas.items():
            for other_id in self._tenant_servers[tenant_id].values():
                if other_id != server_id:
                    shared[other_id] = shared.get(other_id, 0.0) \
                        + replica.load
        return shared

    def naive_worst_failover_load(self, server_id: int,
                                  failures: Optional[int] = None) -> float:
        """:meth:`worst_failover_load` recomputed from the replica sets."""
        f = self.gamma - 1 if failures is None else failures
        if f <= 0:
            return 0.0
        values = list(self.naive_shared_partners(server_id).values())
        if len(values) <= f:
            return sum(values)
        return sum(heapq.nlargest(f, values))

    def naive_slack(self, server_id: int,
                    failures: Optional[int] = None) -> float:
        """:meth:`slack` recomputed from the replica sets."""
        server = self.server(server_id)
        return (server.capacity - server.load
                - self.naive_worst_failover_load(server_id, failures))

    def _shadow_check(self, server_id: int, f: int, cached: float) -> None:
        """Raise if the value about to be served diverges from naive
        recomputation (cache invalidation missed a server, or the
        incremental shared-load index itself drifted)."""
        truth = self.naive_worst_failover_load(server_id, f)
        if abs(truth - cached) > SHADOW_EPS:
            raise ShadowAuditError(
                f"slack index divergence on server {server_id} "
                f"(failures={f}): cached worst failover {cached!r} vs "
                f"naive {truth!r}",
                server_id=server_id, cached=cached, recomputed=truth)
        naive_shared = self.naive_shared_partners(server_id)
        indexed_shared = self._shared[server_id]
        keys = set(naive_shared) | set(indexed_shared)
        for other in keys:
            a = indexed_shared.get(other, 0.0)
            b = naive_shared.get(other, 0.0)
            if abs(a - b) > SHADOW_EPS:
                raise ShadowAuditError(
                    f"shared-load divergence between servers "
                    f"{server_id} and {other}: indexed {a!r} vs "
                    f"naive {b!r}",
                    server_id=server_id, cached=a, recomputed=b)

    def slack(self, server_id: int, failures: Optional[int] = None) -> float:
        """Capacity remaining after load plus worst-case failover load.

        A non-negative slack for every server is exactly the paper's
        robustness condition for the given failure budget.
        """
        server = self.server(server_id)
        return (server.capacity - server.load
                - self.worst_failover_load(server_id, failures))

    def is_robust(self, server_id: int,
                  failures: Optional[int] = None) -> bool:
        """Whether one server meets the robustness condition."""
        return self.slack(server_id, failures) >= -LOAD_EPS

    def failover_load(self, server_id: int,
                      failed: Iterable[int]) -> float:
        """Load redirected to ``server_id`` for a *specific* failure set.

        Uses the paper's conservative accounting (each failed partner
        redirects its full shared load), i.e.
        ``sum(|S ∩ F| for F in failed)``.
        """
        shared = self._shared[server_id]
        return sum(shared.get(f, 0.0) for f in failed if f != server_id)

    def exact_failover_load(self, server_id: int,
                            failed: Iterable[int]) -> float:
        """Load redirected to ``server_id`` under *exact* redistribution.

        When ``k`` of a tenant's servers fail, its total load ``x`` is
        re-shared evenly among the ``gamma - k`` survivors, so each
        survivor's share grows from ``x/gamma`` to ``x/(gamma-k)``.  This
        is the semantics the cluster simulator implements; it is never
        larger than :meth:`failover_load` and coincides with it when all
        ``gamma - 1`` partners of a tenant fail.
        """
        failed_set = set(failed)
        failed_set.discard(server_id)
        extra = 0.0
        server = self.server(server_id)
        for (tenant_id, _index) in server.replicas:
            homes = set(self._tenant_servers[tenant_id].values())
            k = len(homes & failed_set)
            if k == 0:
                continue
            survivors = len(homes) - k
            if survivors <= 0:
                continue  # tenant fully lost; no load to redirect
            x = self._tenant_loads[tenant_id]
            extra += x / survivors - x / len(homes)
        return extra

    def utilization(self) -> float:
        """Mean load across non-empty servers (paper's 'average server
        utilization' statistic)."""
        nonempty = [s for s in self._servers.values() if len(s) > 0]
        if not nonempty:
            return 0.0
        return sum(s.load for s in nonempty) / len(nonempty)

    def total_load(self) -> float:
        """Total placed replica load across all servers."""
        return sum(s.load for s in self._servers.values())

    def snapshot(self) -> Dict[int, List[ReplicaKey]]:
        """Cheap, copyable description of the assignment for reporting."""
        return {sid: sorted(server.replicas)
                for sid, server in self._servers.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlacementState(gamma={self.gamma}, "
                f"servers={self.num_servers}, tenants={self.num_tenants})")
