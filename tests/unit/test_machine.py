"""Unit tests for the processor-sharing machine model."""

import pytest

from repro.cluster.engine import Simulator
from repro.cluster.machine import Machine
from repro.errors import SimulationError


def make(cores=2):
    sim = Simulator()
    return sim, Machine(sim, machine_id=0, cores=cores)


class TestSingleJob:
    def test_runs_at_full_speed(self):
        sim, m = make(cores=2)
        done = []
        m.submit(3.0, lambda: done.append(sim.now))
        sim.run_until(10.0)
        assert done == [pytest.approx(3.0)]

    def test_invalid_demand(self):
        sim, m = make()
        with pytest.raises(SimulationError):
            m.submit(0.0, lambda: None)


class TestProcessorSharing:
    def test_jobs_below_cores_run_full_speed(self):
        sim, m = make(cores=2)
        done = []
        m.submit(2.0, lambda: done.append(("a", sim.now)))
        m.submit(3.0, lambda: done.append(("b", sim.now)))
        sim.run_until(10.0)
        assert done == [("a", pytest.approx(2.0)),
                        ("b", pytest.approx(3.0))]

    def test_sharing_beyond_cores(self):
        """4 equal jobs on 2 cores: each runs at rate 1/2, so 1-second
        jobs complete together at t=2."""
        sim, m = make(cores=2)
        done = []
        for i in range(4):
            m.submit(1.0, lambda i=i: done.append((i, sim.now)))
        sim.run_until(10.0)
        assert [t for _, t in done] == [pytest.approx(2.0)] * 4

    def test_rate_rises_when_jobs_depart(self):
        """Jobs: one of demand 1 and one of demand 2 on a single core.
        Until t=2 both share (rate 1/2 each): job A finishes at 2 having
        1 unit done; job B then runs alone and finishes at 3."""
        sim, m = make(cores=1)
        done = {}
        m.submit(1.0, lambda: done.setdefault("a", sim.now))
        m.submit(2.0, lambda: done.setdefault("b", sim.now))
        sim.run_until(10.0)
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(3.0)

    def test_late_arrival_shares_remaining_work(self):
        """Job A (demand 2) starts at 0 on 1 core; job B (demand 1)
        arrives at t=1.  From t=1 both run at 1/2.  A has 1 unit left ->
        A and B finish at t=3."""
        sim, m = make(cores=1)
        done = {}
        m.submit(2.0, lambda: done.setdefault("a", sim.now))
        sim.schedule(1.0, lambda: m.submit(
            1.0, lambda: done.setdefault("b", sim.now)))
        sim.run_until(10.0)
        assert done["a"] == pytest.approx(3.0)
        assert done["b"] == pytest.approx(3.0)


class TestAbortAndFailure:
    def test_abort_removes_job(self):
        sim, m = make(cores=1)
        done = []
        job = m.submit(5.0, lambda: done.append("x"))
        assert m.abort(job)
        sim.run_until(10.0)
        assert done == []
        assert not m.abort(job)  # second abort is a no-op

    def test_abort_speeds_up_survivors(self):
        sim, m = make(cores=1)
        done = {}
        a = m.submit(4.0, lambda: done.setdefault("a", sim.now))
        m.submit(4.0, lambda: done.setdefault("b", sim.now))
        sim.schedule(2.0, lambda: m.abort(a))
        sim.run_until(20.0)
        # b had 3 units left at t=2 (rate 1/2 for 2s), then full speed.
        assert done["b"] == pytest.approx(5.0)

    def test_fail_aborts_everything(self):
        sim, m = make(cores=1)
        done = []
        m.submit(5.0, lambda: done.append("x"))
        m.submit(5.0, lambda: done.append("y"))
        aborted = m.fail()
        assert len(aborted) == 2
        assert m.failed
        sim.run_until(20.0)
        assert done == []

    def test_submit_to_failed_machine_rejected(self):
        sim, m = make()
        m.fail()
        with pytest.raises(SimulationError):
            m.submit(1.0, lambda: None)


class TestStatistics:
    def test_utilization_single_job(self):
        sim, m = make(cores=2)
        m.submit(2.0, lambda: None)
        sim.run_until(4.0)
        # 1 core busy for 2s out of 2 cores * 4s = 0.25
        assert m.utilization() == pytest.approx(0.25)

    def test_completed_jobs_counter(self):
        sim, m = make(cores=2)
        m.submit(1.0, lambda: None)
        m.submit(1.0, lambda: None)
        sim.run_until(5.0)
        assert m.completed_jobs == 2

    def test_active_jobs(self):
        sim, m = make(cores=2)
        m.submit(10.0, lambda: None)
        assert m.active_jobs == 1
