#!/usr/bin/env python
"""Capacity planning: size a fleet and price the savings (Table I style).

Run with::

    python examples/capacity_planning.py [n_tenants]

Given a forecast tenant population, answers the operator questions the
paper's Table I answers: how many servers does each placement policy
need, at which failure tolerance, and what does the difference cost per
year at EC2 on-demand prices?
"""

import sys

from repro import CubeFit, RFI, RobustBestFit
from repro.analysis.cost import CostModel
from repro.analysis.stats import confidence_interval_95
from repro.sim.runner import compare
from repro.workloads import (DiscreteUniformClients, NormalizedClients,
                             ZipfClients)


def plan(distribution, n_tenants: int, runs: int = 3) -> None:
    factories = {
        "CubeFit (1-failure, g=2)":
            lambda: CubeFit(gamma=2, num_classes=10),
        "CubeFit (2-failure, g=3)":
            lambda: CubeFit(gamma=3, num_classes=10),
        "RFI      (1-failure, g=2)": lambda: RFI(gamma=2),
        "BestFit  (1-failure, g=2)":
            lambda: RobustBestFit(gamma=2, failures=1),
    }
    cost = CostModel()
    print(f"\n=== {distribution.name}: {n_tenants} tenants, "
          f"{runs} runs ===")
    result = compare(factories, distribution, n_tenants=n_tenants,
                     runs=runs, base_seed=0)
    baseline = result.mean_servers("RFI      (1-failure, g=2)")
    print(f"{'policy':<28} {'servers':>9} {'±95% CI':>8} "
          f"{'yearly cost':>14} {'vs RFI/yr':>12}")
    for name in factories:
        ci = confidence_interval_95(
            [float(s) for s in result.servers[name]])
        yearly = cost.yearly_cost(ci.mean)
        delta = cost.yearly_savings(baseline, ci.mean)
        print(f"{name:<28} {ci.mean:>9,.1f} {ci.half_width:>8.1f} "
              f"${yearly:>13,.0f} {delta:>+12,.0f}")


def main() -> None:
    n_tenants = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    # The paper's two populations (Section V-C / Table I).
    uniform = NormalizedClients(DiscreteUniformClients(1, 15),
                                max_clients=52)
    zipfian = NormalizedClients(ZipfClients(exponent=3.0, max_clients=52),
                                max_clients=52)
    plan(uniform, n_tenants)
    plan(zipfian, n_tenants)
    print("\nNotes: gamma=3 rows buy tolerance of TWO simultaneous "
          "failures;\nthe extra servers are the price of that insurance "
          "(Section V-B).")


if __name__ == "__main__":
    main()
