"""Whole-shard chaos drill conformance.

:func:`repro.fleet.run_fleet_chaos` crashes a shard mid-traffic and
asserts the fleet contract: replica-for-replica recovery from the
shard's own WAL + checkpoint, typed errors while down, router
reconciliation, audit-clean finish.  These tests run the drill and
check both the contract and the drill's own determinism.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (FleetChaosConfig, PlacementFleet,
                         run_fleet_chaos)
from repro.obs import MetricsRegistry


class TestDrillConformance:
    @pytest.mark.parametrize("seed,policy", [
        (0, "least-loaded"), (7, "hash"), (11, "least-loaded")])
    def test_drill_is_conformant(self, tmp_path, seed, policy):
        obs = MetricsRegistry()
        report = run_fleet_chaos(
            tmp_path / "chaos",
            FleetChaosConfig(operations=160, shards=3, seed=seed,
                             policy=policy),
            obs=obs)
        assert report.ok, "\n".join(report.failures)
        assert report.counts["crash"] == 1
        assert report.counts["recover"] == 1
        assert report.acked_before_crash > 0
        assert report.divergences == []
        assert report.audits and all(report.audits.values())
        assert len(report.audits) == 3
        assert obs.counter("fleet.shard_crashes").value == 1
        assert obs.counter("fleet.shard_recoveries").value == 1

    def test_operations_on_the_down_shard_surface_typed(self, tmp_path):
        # A long downtime over a busy stream reliably hits the victim's
        # tenants with removes/resizes while it is down.
        report = run_fleet_chaos(
            tmp_path / "chaos",
            FleetChaosConfig(operations=200, shards=2, seed=1,
                             crash_at=40, downtime=100))
        assert report.ok, "\n".join(report.failures)
        assert report.counts.get("refused_down", 0) >= 1
        assert report.typed_errors.get("ShardDownError", 0) >= 1

    def test_drill_reproduces_identically(self, tmp_path):
        config = FleetChaosConfig(operations=120, shards=3, seed=5)
        first = run_fleet_chaos(tmp_path / "a", config)
        second = run_fleet_chaos(tmp_path / "b", config)
        assert first.ok and second.ok
        assert second.counts == first.counts
        assert second.crash_shard == first.crash_shard
        assert second.acked_before_crash == first.acked_before_crash
        assert second.migrations == first.migrations

    def test_rebalancer_runs_inside_the_drill(self, tmp_path):
        report = run_fleet_chaos(
            tmp_path / "chaos",
            FleetChaosConfig(operations=150, shards=3, seed=2,
                             rebalance_every=25))
        assert report.ok, "\n".join(report.failures)
        assert report.counts.get("rebalance", 0) >= 3

    def test_store_survives_the_drill(self, tmp_path):
        """After the drill closes, the fleet root reopens warm with
        every shard audit-clean — the drill leaves a usable fleet."""
        report = run_fleet_chaos(
            tmp_path / "chaos",
            FleetChaosConfig(operations=100, shards=2, seed=3))
        assert report.ok
        with PlacementFleet(tmp_path / "chaos") as fleet:
            assert fleet.num_shards == 2
            assert fleet.all_audits_ok
            placed = report.counts.get("place", 0) \
                - report.counts.get("remove", 0)
            assert fleet.status()["tenants"] == placed

    def test_repro_line_names_the_config(self, tmp_path):
        report = run_fleet_chaos(
            tmp_path / "chaos",
            FleetChaosConfig(operations=80, shards=2, seed=9))
        assert "run_fleet_chaos" in report.repro_line
        assert "operations=80" in report.repro_line
        assert "seed=9" in report.repro_line


class TestDrillConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetChaosConfig(operations=2)
        with pytest.raises(ConfigurationError):
            FleetChaosConfig(shards=1)
        with pytest.raises(ConfigurationError):
            FleetChaosConfig(operations=100, crash_at=0)
        with pytest.raises(ConfigurationError):
            FleetChaosConfig(operations=100, crash_at=90, downtime=20)

    def test_defaults_resolve_deterministically(self):
        config = FleetChaosConfig(operations=160)
        assert config.resolved_crash_at == 80
        assert config.resolved_downtime == 20
