"""Unit tests for the sensitivity and elasticity harnesses."""

import pytest

from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.sim.elasticity import ElasticityConfig, run_elasticity
from repro.sim.sensitivity import (k_sensitivity, mu_sensitivity,
                                   SensitivityCurve)
from repro.workloads.distributions import UniformLoad
from repro.errors import ConfigurationError


class TestMuSensitivity:
    @pytest.fixture(scope="class")
    def curve(self):
        return mu_sensitivity(UniformLoad(0.4), n_tenants=400,
                              mus=(0.6, 0.85, 1.0), seed=0)

    def test_one_point_per_mu(self, curve):
        assert [p.parameter for p in curve.points] == [0.6, 0.85, 1.0]

    def test_servers_positive(self, curve):
        assert all(p.servers > 0 for p in curve.points)

    def test_servers_at(self, curve):
        assert curve.servers_at(0.85) == curve.points[1].servers
        with pytest.raises(ConfigurationError):
            curve.servers_at(0.77)

    def test_best(self, curve):
        best = curve.best()
        assert best.servers == min(p.servers for p in curve.points)

    def test_table(self, curve):
        assert "mu sensitivity" in str(curve)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            mu_sensitivity(UniformLoad(0.4), mus=())


class TestKSensitivity:
    def test_curve_shape(self):
        curve = k_sensitivity(UniformLoad(0.4), n_tenants=400,
                              ks=(2, 5, 10), seed=0)
        assert len(curve.points) == 3
        assert curve.parameter_name == "K"
        # The paper's guidance: very few classes pack worse than K~5-10.
        assert curve.servers_at(2) >= curve.servers_at(5)


class TestElasticity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_elasticity(
            lambda: CubeFit(gamma=2, num_classes=10), UniformLoad(0.4),
            ElasticityConfig(n_tenants=80, n_updates=120, seed=0))

    def test_counts_partition(self, result):
        assert result.updates == 120
        assert result.migrations + result.in_place == result.updates

    def test_robust_throughout(self, result):
        assert result.robust_throughout

    def test_rates(self, result):
        assert 0.0 <= result.migration_rate <= 1.0

    def test_table(self, result):
        assert "Elasticity" in result.to_table().to_text()

    def test_rfi_also_robust(self):
        result = run_elasticity(
            lambda: RFI(gamma=2), UniformLoad(0.4),
            ElasticityConfig(n_tenants=60, n_updates=80, seed=1))
        assert result.robust_throughout

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticityConfig(n_tenants=0)
        with pytest.raises(ConfigurationError):
            ElasticityConfig(min_factor=0.0)
        with pytest.raises(ConfigurationError):
            ElasticityConfig(min_factor=2.0, max_factor=1.0)
