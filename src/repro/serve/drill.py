"""Kill/restart drills against a real placement daemon.

:func:`run_serve_drill` spawns ``python -m repro serve`` as a child
process, drives placements through :class:`~repro.serve.client
.ServeClient`, terminates the daemon — gracefully (``SIGTERM``) or
violently (``SIGKILL`` mid-traffic) — then recovers the store and
checks the contract the service advertises:

* **Graceful** (``SIGTERM``): the daemon drains, checkpoints, closes;
  exit status 0; the recovered placement holds *exactly* the acked
  tenants, replica-for-replica.
* **Crash** (``SIGKILL``): every *acked* placement is durable — the
  WAL record was fsynced before the response frame went out — so the
  recovered state must contain every acked tenant on exactly the acked
  servers.  Requests in flight when the kill landed may or may not
  have committed; the drill tolerates unacked-but-committed tenants
  (they are inside the driven id range) and nothing else.

Either way the recovered state must pass the full robustness audit.
This is the harness the chaos suite and the CI smoke job both call.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError, ProtocolError, ReproError
from ..store import recover
from .client import ServeClient, wait_until_ready

PathLike = Union[str, Path]

#: Modes a drill can end the daemon with.
MODES = ("sigterm", "sigkill")


@dataclass
class DrillReport:
    """Everything one drill observed, checked, and concluded."""

    mode: str
    store_dir: str
    #: Tenant -> servers (replica-index order) for every acked place.
    acked: Dict[int, List[int]] = field(default_factory=dict)
    #: Requests refused or severed by the kill (never acked).
    unacked: int = 0
    exit_code: Optional[int] = None
    recovered_tenants: int = 0
    recovered_servers: int = 0
    records_replayed: int = 0
    checkpoint_seq: int = 0
    audit_ok: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (f"serve drill [{self.mode}] {status}: "
                f"{len(self.acked)} acked (+{self.unacked} unacked), "
                f"daemon exit {self.exit_code}, recovered "
                f"{self.recovered_tenants} tenants on "
                f"{self.recovered_servers} servers "
                f"(checkpoint seq {self.checkpoint_seq} + "
                f"{self.records_replayed} replayed), audit "
                f"{'clean' if self.audit_ok else 'VIOLATED'}"
                + ("" if self.ok
                   else "; " + "; ".join(self.failures)))


def _drill_load(index: int) -> float:
    """Deterministic per-tenant load — varied, rng-free, replayable."""
    return 0.04 + 0.02 * (index % 7)


def spawn_daemon(store_dir: PathLike, socket_path: PathLike,
                 gamma: int = 2, checkpoint_interval: float = 0.0,
                 queue_size: int = 64,
                 fault_spec: Optional[str] = None,
                 extra_env: Optional[Dict[str, str]] = None
                 ) -> "subprocess.Popen":
    """Start ``python -m repro serve`` on the given store and socket."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    parts = [src_root] + [p for p in
                          env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    if fault_spec is not None:
        env["REPRO_FAULTS"] = fault_spec
    else:
        env.pop("REPRO_FAULTS", None)
    if extra_env:
        env.update(extra_env)
    command = [sys.executable, "-m", "repro", "serve",
               "--store", str(store_dir),
               "--socket", str(socket_path),
               "--gamma", str(gamma),
               "--queue-size", str(queue_size),
               "--checkpoint-interval", str(checkpoint_interval)]
    return subprocess.Popen(command, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def run_serve_drill(store_dir: PathLike, socket_path: PathLike,
                    mode: str = "sigterm", tenants: int = 200,
                    kill_at: Optional[int] = None, gamma: int = 2,
                    checkpoint_interval: float = 0.2,
                    queue_size: int = 64,
                    fault_spec: Optional[str] = None,
                    ready_timeout: float = 20.0) -> DrillReport:
    """Run one kill/restart drill; see the module docstring."""
    if mode not in MODES:
        raise ConfigurationError(
            f"drill mode must be one of {MODES}, got {mode!r}")
    if tenants < 1:
        raise ConfigurationError(f"tenants must be >= 1, got {tenants}")
    store_dir = Path(store_dir)
    report = DrillReport(mode=mode, store_dir=str(store_dir))
    if kill_at is None:
        kill_at = max(tenants // 2, 1)

    daemon = spawn_daemon(store_dir, socket_path, gamma=gamma,
                          checkpoint_interval=checkpoint_interval,
                          queue_size=queue_size, fault_spec=fault_spec)
    try:
        wait_until_ready(socket_path, timeout=ready_timeout)
        report.acked, report.unacked = _drive(
            socket_path, daemon, tenants,
            kill_at=kill_at if mode == "sigkill" else None)
        if mode == "sigterm":
            daemon.send_signal(signal.SIGTERM)
        report.exit_code = daemon.wait(timeout=30.0)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10.0)

    if mode == "sigterm" and report.exit_code != 0:
        report.failures.append(
            f"graceful daemon exited {report.exit_code}, expected 0")
    if mode == "sigkill" and report.exit_code != -signal.SIGKILL:
        report.failures.append(
            f"killed daemon exited {report.exit_code}, expected "
            f"{-signal.SIGKILL}")

    _check_recovery(report, store_dir, mode, tenants)
    return report


def _drive(socket_path: PathLike, daemon: "subprocess.Popen",
           tenants: int, kill_at: Optional[int]
           ) -> Tuple[Dict[int, List[int]], int]:
    """Place ``tenants`` tenants, optionally SIGKILLing mid-traffic.

    Returns ``(acked, unacked)``.  A ``sigkill`` drill severs the
    connection under us — every error after the kill is the expected
    shape of a dead daemon, counted unacked, and the loop reconnects
    at most once to confirm the daemon is really gone.
    """
    acked: Dict[int, List[int]] = {}
    unacked = 0
    client = ServeClient(socket_path)
    try:
        for index in range(1, tenants + 1):
            if kill_at is not None and index == kill_at:
                daemon.send_signal(signal.SIGKILL)
            try:
                acked[index] = client.place_retry(
                    index, _drill_load(index))
            except (ProtocolError, ReproError, OSError):
                unacked += 1
                if kill_at is None or index < kill_at:
                    raise  # not a kill artefact: a real failure
                break  # daemon is dead; remaining requests never sent
        unacked += max(tenants - (len(acked) + unacked), 0)
    finally:
        client.close()
    return acked, unacked


def _check_recovery(report: DrillReport, store_dir: Path, mode: str,
                    tenants: int) -> None:
    """Recover the store and enforce the durability contract."""
    try:
        state = recover(store_dir)
    except ReproError as err:
        report.failures.append(f"recovery failed: {err}")
        return
    placement = state.placement
    report.recovered_tenants = placement.num_tenants
    report.recovered_servers = placement.num_servers
    report.records_replayed = state.records_replayed
    report.checkpoint_seq = state.checkpoint_seq
    report.audit_ok = state.audit.ok
    if not state.audit.ok:
        report.failures.append(
            f"recovered placement failed the {state.failures}-failure "
            f"audit (min slack {state.audit.min_slack:.6f})")

    recovered_ids = set(placement.tenant_ids)
    for tenant_id, servers in sorted(report.acked.items()):
        by_index = placement.tenant_servers(tenant_id)
        got = [by_index[i] for i in sorted(by_index)]
        if got != servers:
            report.failures.append(
                f"acked tenant {tenant_id} recovered on {got}, "
                f"was acked on {servers}")
    extra = recovered_ids - set(report.acked)
    if mode == "sigterm":
        if extra:
            report.failures.append(
                f"graceful recovery has unacked tenants "
                f"{sorted(extra)[:5]}...")
    else:
        # A kill can commit a request whose ack never made it out —
        # but only requests the drill actually sent.
        stray = {t for t in extra if not 1 <= t <= tenants}
        if stray:
            report.failures.append(
                f"recovered tenants never driven: {sorted(stray)[:5]}")
        if len(extra) > 1:
            report.failures.append(
                f"{len(extra)} unacked tenants committed; at most the "
                f"single in-flight request can be")


__all__ = ["MODES", "DrillReport", "run_serve_drill", "spawn_daemon"]
