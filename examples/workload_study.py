#!/usr/bin/env python
"""Workload study: how tenant-size distributions shape consolidation.

Run with::

    python examples/workload_study.py

Sweeps the paper's Figure 6 distribution families at a small scale and
relates the measured savings to the theory: the worst-case competitive
bound of Theorem 2 and the weight-based lower bound on OPT.
"""

from repro import CubeFit, RFI
from repro.algorithms.lower_bound import best_lower_bound
from repro.analysis.competitive import competitive_ratio_upper_bound
from repro.sim.runner import compare
from repro.workloads import (NormalizedClients, UniformLoad, ZipfClients,
                             generate_sequence)

N_TENANTS = 2000
GAMMA = 2
K = 10


def study(distribution) -> None:
    factories = {
        "cubefit": lambda: CubeFit(gamma=GAMMA, num_classes=K),
        "rfi": lambda: RFI(gamma=GAMMA),
    }
    result = compare(factories, distribution, n_tenants=N_TENANTS,
                     runs=2, base_seed=0)
    seq = generate_sequence(distribution, N_TENANTS, seed=0)
    lb = best_lower_bound(seq.loads, GAMMA, K)
    cube = result.mean_servers("cubefit")
    rfi = result.mean_servers("rfi")
    savings = result.savings_percent("rfi", "cubefit")
    print(f"{distribution.name:<22} {lb:>6} {cube:>9.1f} "
          f"{cube / lb:>7.2f} {rfi:>9.1f} {savings:>9.1f}%")


def main() -> None:
    print(f"{N_TENANTS} tenants per run, gamma={GAMMA}, K={K}\n")
    print(f"{'distribution':<22} {'LB':>6} {'CubeFit':>9} "
          f"{'vs LB':>7} {'RFI':>9} {'savings':>10}")
    for max_load in (0.2, 0.4, 0.6, 0.8, 1.0):
        study(UniformLoad(max_load))
    for exponent in (2.0, 3.0, 4.0):
        study(NormalizedClients(ZipfClients(exponent, 52)))

    bound = competitive_ratio_upper_bound(GAMMA, 211)
    print(f"\nTheory check: no input can force CubeFit above "
          f"{float(bound.value):.3f}x the optimal robust packing "
          f"(Theorem 2's bound for large K; the paper quotes 1.59).")
    print("'vs LB' compares CubeFit to the weight-based lower bound on "
          "OPT;\nvalues close to 1 substantiate the paper's "
          "'near-optimal' claim,\nand are far below the worst-case "
          "bound on every realistic workload.")


if __name__ == "__main__":
    main()
