"""Unit tests for the robustness audits."""

import pytest

from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.core.validation import (IncrementalAuditor, audit,
                                   brute_force_audit,
                                   exact_failure_audit,
                                   shared_tenant_counts,
                                   max_shared_tenants)
from repro.errors import RobustnessViolation


def build_violating_placement():
    """Three servers; robust to one failure but not to two.

    Tenants 0.9 and 0.3 share all three servers: each server carries
    0.4 and every pairwise shared load is 0.4, so one failure gives 0.8
    (fine) but two failures give 1.2 — overload 0.2.
    """
    ps = PlacementState(gamma=3)
    for _ in range(3):
        ps.open_server()
    ps.place_tenant(Tenant(0, 0.9), [0, 1, 2])
    ps.place_tenant(Tenant(1, 0.3), [0, 1, 2])
    return ps


class TestAudit:
    def test_empty_placement_is_ok(self):
        ps = PlacementState(gamma=2)
        report = audit(ps)
        assert report.ok
        assert report.min_slack == pytest.approx(1.0)

    def test_detects_violation(self):
        ps = build_violating_placement()
        report = audit(ps)
        assert not report.ok
        violation = report.violations[0]
        assert violation.server_id in (0, 1, 2)
        assert violation.overload == pytest.approx(0.2)

    def test_raise_if_violated(self):
        ps = build_violating_placement()
        with pytest.raises(RobustnessViolation) as err:
            audit(ps).raise_if_violated()
        assert err.value.overload == pytest.approx(0.2)

    def test_ok_report_does_not_raise(self):
        ps = PlacementState(gamma=2)
        for _ in range(2):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.8), [0, 1])
        audit(ps).raise_if_violated()

    def test_failure_budget_parameter(self):
        ps = build_violating_placement()
        # Only robust for a single failure, not two.
        assert audit(ps, failures=1).ok
        assert not audit(ps, failures=2).ok

    def test_report_str(self):
        ps = build_violating_placement()
        text = str(audit(ps))
        assert "violations" in text


class TestBruteForceAgreement:
    @pytest.mark.parametrize("gamma", [2, 3])
    def test_agrees_with_fast_audit_on_random_placements(
            self, gamma, seeded_rng):
        rng = seeded_rng(23)
        for trial in range(10):
            ps = PlacementState(gamma=gamma)
            n_servers = 6
            for _ in range(n_servers):
                ps.open_server()
            for tid in range(8):
                load = float(rng.uniform(0.05, 0.5))
                homes = list(rng.choice(n_servers, size=gamma,
                                        replace=False))
                try:
                    ps.place_tenant(Tenant(tid, load),
                                    [int(h) for h in homes])
                except Exception:
                    continue  # capacity exceeded: skip this tenant
            fast = audit(ps)
            slow = brute_force_audit(ps)
            assert fast.ok == slow.ok
            assert fast.min_slack == pytest.approx(slow.min_slack)

    def test_exact_audit_never_stricter(self, seeded_rng):
        """The conservative condition implies safety under exact
        redistribution."""
        rng = seeded_rng(29)
        for trial in range(5):
            ps = PlacementState(gamma=3)
            for _ in range(6):
                ps.open_server()
            for tid in range(6):
                load = float(rng.uniform(0.05, 0.4))
                homes = [int(h) for h in
                         rng.choice(6, size=3, replace=False)]
                try:
                    ps.place_tenant(Tenant(tid, load), homes)
                except Exception:
                    continue
            if audit(ps).ok:
                assert exact_failure_audit(ps).ok


class TestSharedTenantCounts:
    def test_counts_pairs(self):
        ps = PlacementState(gamma=2)
        for _ in range(3):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        ps.place_tenant(Tenant(1, 0.4), [0, 1])
        ps.place_tenant(Tenant(2, 0.4), [1, 2])
        counts = shared_tenant_counts(ps)
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1
        assert max_shared_tenants(ps) == 2

    def test_empty(self):
        ps = PlacementState(gamma=2)
        assert max_shared_tenants(ps) == 0


class TestIncrementalAuditor:
    def build(self):
        ps = PlacementState(gamma=2)
        for _ in range(4):
            ps.open_server()
        return ps

    def test_matches_full_audit_step_by_step(self):
        ps = self.build()
        auditor = IncrementalAuditor(ps)
        for tid, (load, targets) in enumerate(
                [(0.6, [0, 1]), (0.5, [1, 2]), (0.4, [2, 3]),
                 (0.2, [3, 0])]):
            ps.place_tenant(Tenant(tid, load), targets)
            expected = audit(ps)
            got = auditor.check()
            assert got.ok == expected.ok
            assert got.min_slack == pytest.approx(expected.min_slack)
            assert {v.server_id for v in got.violations} \
                == {v.server_id for v in expected.violations}

    def test_violation_clears_after_removal(self):
        ps = self.build()
        # Overload server 1 under the 1-failure condition:
        # load 0.9 plus worst failover 0.45 > 1.
        ps.place_tenant(Tenant(0, 0.9), [0, 1])
        ps.place_tenant(Tenant(1, 0.9), [1, 2])
        auditor = IncrementalAuditor(ps)
        report = auditor.check()
        assert not report.ok
        ps.remove_tenant(1)
        report = auditor.check()
        assert report.ok
        assert report.min_slack == pytest.approx(audit(ps).min_slack)

    def test_empty_placement(self):
        ps = PlacementState(gamma=2)
        auditor = IncrementalAuditor(ps)
        report = auditor.check()
        assert report.ok
        assert report.min_slack == pytest.approx(ps.capacity)

    def test_heap_compaction_under_churn(self):
        ps = self.build()
        auditor = IncrementalAuditor(ps)
        for round_ in range(200):
            ps.place_tenant(Tenant(round_, 0.3), [0, 1])
            assert auditor.check().ok
            ps.remove_tenant(round_)
            assert auditor.check().ok
        # The lazy min-heap must stay bounded relative to the fleet.
        assert len(auditor._heap) <= 4 * max(len(auditor._slack), 16) + 4

    def test_close_unsubscribes(self):
        ps = self.build()
        auditor = IncrementalAuditor(ps)
        auditor.check()
        auditor.close()
        ps.place_tenant(Tenant(0, 0.5), [0, 1])
        assert auditor._tracker.peek() == set()
