"""Append-only write-ahead log of placement operations.

The log is the commit point of the durable controller: the in-memory
:class:`~repro.core.placement.PlacementState` is authoritative only
until the process dies, so an operation counts as *committed* exactly
when its record has been appended (and, under the ``"always"`` fsync
policy, flushed to stable storage).  Recovery replays committed records
on top of the latest checkpoint; an operation whose record was lost to
a crash simply never happened.

Layout and format
-----------------
A log lives in a directory as a series of *segments*::

    wal-000000000000.jsonl
    wal-000000000512.jsonl
    ...

Each segment is JSON lines, one record per line, named after the
sequence number of its first record::

    {"data": {"load": 0.25, "servers": [0, 1], "tenant": 7},
     "op": "place", "seq": 12}

Sequence numbers are global, contiguous, and monotonically increasing
across segments; a gap or regression means the history cannot be
trusted and raises :class:`~repro.errors.StoreCorruptionError`.  A
segment rotates after ``segment_records`` records so that compaction
(:meth:`WriteAheadLog.truncate_before`) can drop whole files that a
checkpoint has made redundant.

Crash tolerance
---------------
A crash mid-append leaves a *torn tail*: a final line with no trailing
newline or invalid JSON.  The torn record was never committed, so both
the reader (:meth:`WriteAheadLog.records`) and the writer (which
truncates the tail on reopen) ignore it.  Invalid bytes anywhere other
than the final line of the final segment are corruption, not a crash
artifact, and raise.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .. import faults
from ..errors import (ConfigurationError, SimulatedCrash,
                      StoreCorruptionError)

PathLike = Union[str, Path]

#: fsync after every append — every committed record survives power loss.
FSYNC_ALWAYS = "always"
#: fsync only on segment rotation and close — bounded loss window.
FSYNC_ROTATE = "rotate"
#: never fsync — durability left to the OS (tests, throwaway runs).
FSYNC_NEVER = "never"

FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_ROTATE, FSYNC_NEVER)

_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.jsonl$")


def _segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:012d}.jsonl"


def _jsonable(value):
    """Best-effort conversion of numpy scalars et al. for json.dumps."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"WAL field of type {type(value).__name__} is not "
        f"JSON-serializable: {value!r}")


class WalRecord:
    """One committed operation: sequence number, op name, payload."""

    __slots__ = ("seq", "op", "data")

    def __init__(self, seq: int, op: str, data: Dict[str, object]) -> None:
        self.seq = seq
        self.op = op
        self.data = data

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "op": self.op,
                           "data": self.data},
                          sort_keys=True, default=_jsonable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalRecord(seq={self.seq}, op={self.op!r}, {self.data!r})"


class WriteAheadLog:
    """Segmented JSONL log with monotonic sequence numbers.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.  Reopening a directory
        with existing segments resumes numbering after the last
        committed record (repairing a torn tail first).
    fsync:
        One of :data:`FSYNC_ALWAYS` (default), :data:`FSYNC_ROTATE`,
        :data:`FSYNC_NEVER`.
    segment_records:
        Records per segment before rotation.
    """

    def __init__(self, directory: PathLike, fsync: str = FSYNC_ALWAYS,
                 segment_records: int = 512) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {fsync!r}; "
                f"known: {list(FSYNC_POLICIES)}")
        if segment_records < 1:
            raise ConfigurationError(
                f"segment_records must be >= 1, got {segment_records}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_records = segment_records
        self._file = None
        self._segment_count = 0  # records in the open segment
        self._next_seq = 0
        self._recover_tail()

    # ------------------------------------------------------------------
    # Open / repair
    # ------------------------------------------------------------------
    def segments(self) -> List[Path]:
        """Segment paths in sequence order."""
        found: List[Tuple[int, Path]] = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _seq, path in sorted(found)]

    def _recover_tail(self) -> None:
        """Position the writer after the last committed record.

        Scans the final segment only; a torn final line is truncated
        away so the segment stays valid JSONL for appends.
        """
        segments = self.segments()
        if not segments:
            return
        last = segments[-1]
        first_seq = int(_SEGMENT_RE.match(last.name).group(1))
        text = last.read_bytes().decode("utf-8", errors="replace")
        lines = text.splitlines(keepends=True)
        good_end = 0
        seq = first_seq
        count = 0
        for line_no, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                good_end += len(line)
                continue
            try:
                raw = json.loads(stripped)
                record_seq = int(raw["seq"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A torn tail can only be the final line; garbage with
                # committed records after it is corruption, not a crash.
                if any(rest.strip() for rest in lines[line_no:]):
                    raise StoreCorruptionError(
                        f"{last} line {line_no}: unreadable WAL record "
                        f"followed by further records") from None
                break  # torn tail: drop the uncommitted final line
            if record_seq != seq:
                raise StoreCorruptionError(
                    f"{last}: expected sequence {seq}, found "
                    f"{record_seq}")
            if not line.endswith("\n"):
                break  # complete JSON but no newline: still torn
            seq += 1
            count += 1
            good_end += len(line)
        if good_end != len(text):
            with open(last, "r+", encoding="utf-8") as handle:
                handle.truncate(good_end)
        self._next_seq = seq
        self._segment_count = count

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next append will receive (== number of
        committed records since the log's creation)."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last committed record (-1 if none)."""
        return self._next_seq - 1

    def _open_segment(self) -> None:
        if self._file is not None:
            self._close_segment()
        path = self.directory / _segment_name(self._next_seq)
        self._file = open(path, "a", encoding="utf-8")
        self._segment_count = 0

    def _fsync(self, fileno: int) -> None:
        """fsync with the ``store.wal.fsync`` failpoint in front.

        A fired failpoint models an fsync *failure*: the bytes already
        reached the OS (the append wrote and flushed them), but the
        controller cannot confirm durability — so it must treat the
        operation as failed even though recovery may well see it.
        """
        if faults.active():
            faults.fire("store.wal.fsync")
        os.fsync(fileno)

    def _close_segment(self) -> None:
        """Flush, fsync (per policy) and close the open segment.

        Exception-safe: the handle is detached first and closed in a
        ``finally``, so a failed fsync (a fired ``store.wal.fsync``
        failpoint or a real ``OSError``) still releases the file — the
        caller sees the error, but the WAL is left cleanly closed, not
        half-closed around a leaked handle.  Idempotent: a second call
        is a no-op.
        """
        handle, self._file = self._file, None
        if handle is None:
            return
        try:
            handle.flush()
            if self.fsync in (FSYNC_ALWAYS, FSYNC_ROTATE):
                self._fsync(handle.fileno())
        finally:
            handle.close()

    def append(self, op: str, data: Dict[str, object]) -> int:
        """Commit one record; returns its sequence number."""
        if not op:
            raise ConfigurationError("WAL op must be non-empty")
        if self._file is None:
            # First append after open: continue the existing final
            # segment if it still has room, else start a fresh one.
            segments = self.segments()
            if segments and self._segment_count < self.segment_records:
                self._file = open(segments[-1], "a", encoding="utf-8")
            else:
                self._open_segment()
        elif self._segment_count >= self.segment_records:
            self._open_segment()
        record = WalRecord(seq=self._next_seq, op=op, data=dict(data))
        line = record.to_json() + "\n"
        if faults.active():
            # Before any byte: the record is never committed.
            faults.fire("store.wal.append")
            if faults.should("store.wal.torn_tail"):
                # Crash mid-write: half the line reaches the file, no
                # newline — the torn tail _recover_tail must repair.
                self._file.write(line[: max(1, len(line) // 2)])
                self._file.flush()
                raise SimulatedCrash(
                    f"failpoint store.wal.torn_tail tore record seq="
                    f"{record.seq} mid-write",
                    failpoint="store.wal.torn_tail")
        self._file.write(line)
        self._file.flush()
        if self.fsync == FSYNC_ALWAYS:
            self._fsync(self._file.fileno())
        self._next_seq += 1
        self._segment_count += 1
        if self._segment_count >= self.segment_records:
            self._open_segment()  # rotate eagerly so readers see a cut
        return record.seq

    def flush(self) -> None:
        """Flush (and under always/rotate policies fsync) pending bytes."""
        if self._file is not None:
            self._file.flush()
            if self.fsync in (FSYNC_ALWAYS, FSYNC_ROTATE):
                self._fsync(self._file.fileno())

    def close(self) -> None:
        self._close_segment()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, start_seq: int = 0) -> Iterator[WalRecord]:
        """Committed records with ``seq >= start_seq``, in order.

        Segments that lie entirely below ``start_seq`` are skipped
        without being parsed — this is what makes checkpoint-plus-tail
        recovery O(tail), not O(history).
        """
        self.flush()
        segments = self.segments()
        starts = [int(_SEGMENT_RE.match(p.name).group(1))
                  for p in segments]
        expected: Optional[int] = None
        for index, (path, first_seq) in enumerate(zip(segments, starts)):
            is_last = index == len(segments) - 1
            # Whole segment below start_seq?  Its records are
            # [first_seq, next segment's first seq).
            if not is_last and starts[index + 1] <= start_seq:
                continue
            if expected is None:
                expected = first_seq
            elif first_seq != expected:
                raise StoreCorruptionError(
                    f"{path}: segment starts at {first_seq}, expected "
                    f"{expected}; a segment is missing")
            lines = path.read_text(encoding="utf-8",
                                   errors="replace").splitlines()
            for line_no, line in enumerate(lines, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                if faults.active():
                    # The default string mutator yields valid JSON with
                    # an impossible seq, so corruption is detected by
                    # the sequence check even on the final line (where
                    # unparseable bytes would pass as a torn tail).
                    stripped = faults.corrupt("store.wal.read", stripped)
                try:
                    raw = json.loads(stripped)
                    record = WalRecord(seq=int(raw["seq"]),
                                       op=str(raw["op"]),
                                       data=dict(raw.get("data", {})))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError) as err:
                    if is_last and line_no == len(lines):
                        return  # torn tail: never committed
                    raise StoreCorruptionError(
                        f"{path} line {line_no}: unreadable WAL record "
                        f"({err})") from None
                if record.seq != expected:
                    raise StoreCorruptionError(
                        f"{path} line {line_no}: sequence {record.seq} "
                        f"where {expected} was expected")
                expected += 1
                if record.seq >= start_seq:
                    yield record

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def truncate_before(self, seq: int) -> List[Path]:
        """Delete segments whose records all have ``seq < seq``.

        Called after a checkpoint covering everything below ``seq``;
        only whole segments are removed (the segment containing ``seq``
        and everything after it stays).  Returns the removed paths.
        """
        segments = self.segments()
        starts = [int(_SEGMENT_RE.match(p.name).group(1))
                  for p in segments]
        removed: List[Path] = []
        for index, path in enumerate(segments[:-1]):
            if starts[index + 1] <= seq:
                path.unlink()
                removed.append(path)
            else:
                break
        return removed
