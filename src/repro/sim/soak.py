"""Soak testing: a randomized operation stream with continuous audits.

Unit and property tests exercise operations in isolation; the soak
harness interleaves *everything* the library supports — arrivals,
departures, elastic resizes, server failures with re-replication, and
repacking passes — against one placement, auditing the robustness
condition after every operation.  It is the closest thing to a chaos
test a packing data structure can have, and it doubles as a throughput
measurement for mixed workloads.

Run via ``python -m repro soak`` or directly::

    from repro.sim.soak import SoakConfig, run_soak
    result = run_soak(lambda: CubeFit(gamma=2, num_classes=10))
    assert result.violations == 0
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.base import OnlinePlacementAlgorithm
from ..algorithms.repack import Repacker
from ..core.recovery import RecoveryPlanner
from ..core.tenant import Tenant
from ..core.validation import IncrementalAuditor, audit
from ..errors import ConfigurationError

#: Operation mix weights (normalized at run time).
DEFAULT_MIX = {
    "place": 5.0,
    "remove": 3.0,
    "resize": 2.0,
    "fail_and_recover": 0.3,
    "repack": 0.1,
}


@dataclass(frozen=True)
class SoakConfig:
    """Parameters of a soak run."""

    operations: int = 500
    #: Operation mix; keys as in DEFAULT_MIX.
    mix: Optional[Dict[str, float]] = None
    #: Audit after every operation (True) or only at the end.
    audit_each: bool = True
    min_load: float = 0.02
    max_load: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ConfigurationError("operations must be >= 1")
        if not (0 < self.min_load <= self.max_load <= 1.0):
            raise ConfigurationError(
                "need 0 < min_load <= max_load <= 1")
        if self.mix is not None:
            unknown = set(self.mix) - set(DEFAULT_MIX)
            if unknown:
                raise ConfigurationError(
                    f"unknown soak operations: {sorted(unknown)}")


@dataclass
class SoakResult:
    """Outcome of a soak run."""

    algorithm: str
    operations: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    violations: int = 0
    first_violation_op: Optional[int] = None
    final_tenants: int = 0
    final_servers: int = 0
    recovered_replicas: int = 0
    repacked_servers: int = 0
    #: Metrics snapshot of the run (None when not instrumented).
    metrics: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def __str__(self) -> str:
        status = "OK" if self.ok else \
            f"{self.violations} AUDIT VIOLATIONS " \
            f"(first at op {self.first_violation_op})"
        ops = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return (f"SoakResult({self.algorithm}: {self.operations} ops "
                f"[{ops}]; {self.final_tenants} tenants on "
                f"{self.final_servers} servers; {status})")


class _SoakDriver:
    """Applies the randomized operation stream to one algorithm.

    The driver owns the *workload* state (alive tenants, next tenant
    id, the rng) separately from the *controller* state (the algorithm
    and its placement), which is what makes kill-and-resume possible:
    :func:`run_soak_with_crash` throws the controller away mid-run and
    hands the surviving workload state to a fresh driver wrapped around
    the recovered placement.

    When a :class:`~repro.store.DurableStore` is attached to the
    algorithm, the place/remove/resize operations log themselves; the
    harness-level mutations that bypass the algorithm hooks — the
    recovery planner's per-replica moves and the repacker's migrations
    — are logged here, after any servers they opened.
    """

    def __init__(self, algorithm: OnlinePlacementAlgorithm,
                 cfg: SoakConfig, rng, result: SoakResult,
                 gated=None, checkpoint_every: Optional[int] = None,
                 alive: Optional[List[int]] = None,
                 next_id: int = 0) -> None:
        self.algorithm = algorithm
        self.placement = algorithm.placement
        self.cfg = cfg
        self.rng = rng
        self.result = result
        self.gated = gated
        self.checkpoint_every = checkpoint_every
        self.alive: List[int] = list(alive) if alive is not None else []
        self.next_id = next_id
        #: Kind of the operation the last ``step`` ran (or started):
        #: the chaos harness uses it to tell roll-backable wrapper ops
        #: (place/remove/resize) from compound plan-and-apply ops
        #: (fail_and_recover, repack) that cannot be contained in
        #: place when a fault interrupts them.
        self.last_op = ""
        self.budget = algorithm.guaranteed_failures
        mix = dict(DEFAULT_MIX)
        if cfg.mix:
            mix.update(cfg.mix)
        self.names = sorted(mix)
        weights = np.array([mix[n] for n in self.names], dtype=float)
        self.weights = weights / weights.sum()
        # Audit-per-operation is the soak's dominant cost; the
        # incremental auditor re-evaluates only servers the operation
        # touched.
        self.auditor = IncrementalAuditor(self.placement,
                                          failures=self.budget) \
            if cfg.audit_each else None

    def _check(self, op_index: int) -> None:
        if self.auditor is None:
            return
        if not self.auditor.check().ok:
            self.result.violations += 1
            if self.result.first_violation_op is None:
                self.result.first_violation_op = op_index

    def step(self, op_index: int) -> None:
        cfg, rng, placement = self.cfg, self.rng, self.placement
        algorithm, result, gated = self.algorithm, self.result, self.gated
        store = algorithm.store
        op = str(rng.choice(self.names, p=self.weights))
        if op in ("remove", "resize", "fail_and_recover") \
                and not self.alive:
            op = "place"
        if op == "fail_and_recover" and \
                (placement.gamma < 2 or self.budget == 0):
            # No failure budget to spend: gamma=1 keeps no redundancy
            # (guaranteed_failures is 0) and the 1..gamma-1 failure
            # count drawn below would be an empty range.
            op = "place"
        if op == "repack" and placement.num_nonempty_servers < 4:
            op = "place"
        result.counts[op] = result.counts.get(op, 0) + 1
        result.operations += 1
        self.last_op = op

        if op == "place":
            load = float(rng.uniform(cfg.min_load, cfg.max_load))
            algorithm.place(Tenant(self.next_id, load))
            self.alive.append(self.next_id)
            self.next_id += 1
        elif op == "remove":
            victim = self.alive.pop(int(rng.integers(len(self.alive))))
            algorithm.remove(victim)
        elif op == "resize":
            tenant_id = self.alive[int(rng.integers(len(self.alive)))]
            load = float(rng.uniform(cfg.min_load, cfg.max_load))
            algorithm.update_load(tenant_id, load)
        elif op == "fail_and_recover":
            nonempty = [s.server_id for s in placement if len(s) > 0]
            # Fail at most gamma-1 servers (the robustness budget) and
            # never more than exist; the range is non-empty because
            # gamma < 2 was converted to "place" above.
            count = min(len(nonempty),
                        int(rng.integers(1, placement.gamma)))
            victims = [int(v) for v in rng.choice(nonempty, size=count,
                                                  replace=False)]
            plan = RecoveryPlanner(placement, failures=self.budget,
                                   obs=gated).recover(victims)
            result.recovered_replicas += plan.replicas_relocated
            if store is not None:
                store.log_open_through(placement._next_server_id)
                for move in plan.moves:
                    store.log_move(move.tenant_id, move.replica_index,
                                   move.load, move.source, move.target)
            if gated is not None:
                gated.counter("soak.servers_failed").inc(count)
                gated.emit("fail_and_recover", victims=victims,
                           relocated=plan.replicas_relocated)
        elif op == "repack":
            plan = Repacker(placement, failures=self.budget,
                            obs=gated).repack(max_drains=2)
            result.repacked_servers += len(plan.drained_servers)
            if store is not None:
                # The repacker never opens servers, but stay defensive.
                store.log_open_through(placement._next_server_id)
                for migration in plan.migrations:
                    store.log_migrate(migration.tenant_id,
                                      migration.load,
                                      migration.targets)
            if gated is not None:
                gated.emit("repack",
                           drained=list(plan.drained_servers),
                           migrations=len(plan.migrations))
        if store is not None and self.checkpoint_every \
                and (op_index + 1) % self.checkpoint_every == 0:
            store.checkpoint(placement)
            store.compact()
        self._check(op_index)

    def finish(self) -> None:
        result, placement = self.result, self.placement
        if not self.cfg.audit_each and not audit(
                placement, failures=self.budget).ok:
            result.violations += 1
            result.first_violation_op = self.cfg.operations - 1
        result.final_tenants = placement.num_tenants
        result.final_servers = placement.num_nonempty_servers
        if self.gated is not None:
            result.metrics = self.gated.snapshot()


def run_soak(factory: Callable[[], OnlinePlacementAlgorithm],
             config: Optional[SoakConfig] = None,
             obs=None, store=None,
             checkpoint_every: Optional[int] = None) -> SoakResult:
    """Drive one algorithm through the randomized operation stream.

    ``obs`` (a :class:`~repro.obs.MetricsRegistry`) instruments the run:
    the algorithm journals every place/remove/resize, the harness
    journals every ``fail_and_recover`` and ``repack``, and the final
    snapshot lands in ``SoakResult.metrics``.  Replaying the run's
    journal therefore yields exactly the operation counts recorded in
    ``SoakResult.counts``.

    ``store`` (a :class:`~repro.store.DurableStore`) makes the run
    restartable: every operation — including the harness-level failure
    recoveries and repacks — is written to the store's WAL, and a
    checkpoint is taken (and the WAL compacted) every
    ``checkpoint_every`` operations.
    """
    cfg = config if config is not None else SoakConfig()
    rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    if store is not None:
        if gated is not None:
            store.attach_obs(gated)
        algorithm.attach_store(store)
    result = SoakResult(algorithm=algorithm.name)
    driver = _SoakDriver(algorithm, cfg, rng, result, gated,
                         checkpoint_every=checkpoint_every)
    for op_index in range(cfg.operations):
        driver.step(op_index)
    driver.finish()
    return result


def run_soak_seeds(factory: Callable[[], OnlinePlacementAlgorithm],
                   seeds: Sequence[int],
                   config: Optional[SoakConfig] = None,
                   jobs: int = 1,
                   obs=None) -> List[SoakResult]:
    """Run one soak per seed, optionally on a forked worker pool.

    Each seed runs ``run_soak`` with ``replace(config, seed=seed)``;
    results come back in seed order and are bit-identical at any
    ``jobs`` (every run re-derives its stream from its own seed).
    Per-run metrics recorded against ``obs`` are merged in seed order
    via :func:`repro.par.pmap`.  Durable stores are not supported here
    — a store serializes one run's WAL, not a fan-out.
    """
    from ..par import pmap
    if not seeds:
        raise ConfigurationError("no seeds to run")
    cfg = config if config is not None else SoakConfig()

    def one_seed(seed: int, run_obs) -> SoakResult:
        return run_soak(factory, config=replace(cfg, seed=int(seed)),
                        obs=run_obs)

    return pmap(one_seed, seeds, jobs=jobs, obs=obs)


@dataclass
class CrashRecoveryReport:
    """Outcome of a kill-and-resume soak/churn run."""

    #: Result of the full (pre-crash + resumed) run.
    result: object
    #: Operations applied before the simulated crash.
    crash_after: int
    #: WAL records replayed on top of the checkpoint during recovery.
    records_replayed: int
    #: Checkpoint watermark recovery started from (0 = no checkpoint).
    checkpoint_seq: int
    #: Differences between the pre-crash state and the recovered state
    #: (:func:`repro.store.diff_placements`); empty means identical.
    diffs: List[str] = field(default_factory=list)
    #: Whether the recovered state passed the robustness audit.
    audit_ok: bool = True
    #: Minimum slack of the recovered state's audit.
    min_slack: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.diffs and self.audit_ok

    def __str__(self) -> str:
        status = "OK" if self.ok else \
            (f"{len(self.diffs)} state diffs" if self.diffs
             else "audit FAILED")
        return (f"CrashRecoveryReport(crash_after={self.crash_after}, "
                f"checkpoint_seq={self.checkpoint_seq}, "
                f"replayed={self.records_replayed}, {status})")


def run_soak_with_crash(factory: Callable[[], OnlinePlacementAlgorithm],
                        store_dir,
                        config: Optional[SoakConfig] = None,
                        crash_after: Optional[int] = None,
                        checkpoint_every: Optional[int] = None,
                        resume_factory: Optional[
                            Callable[[], OnlinePlacementAlgorithm]] = None,
                        obs=None,
                        segment_records: int = 64) -> CrashRecoveryReport:
    """Soak run with a simulated controller crash and recovery.

    Runs ``crash_after`` operations (default: half the configured
    stream) with a :class:`~repro.store.DurableStore` under
    ``store_dir``, drops the controller without any shutdown, recovers
    from checkpoint + WAL tail, verifies the recovered state is
    replica-for-replica identical to the pre-crash placement and
    audit-clean, then *resumes* the remaining operations on the
    recovered state and finishes the run normally.

    The resumed controller defaults to
    :class:`~repro.algorithms.naive.RobustBestFit` at the same gamma
    and failure budget — the algorithm that crashed may not be
    adoptable (CUBEFIT's cube state dies with the process; only the
    placement is durable).  Pass ``resume_factory`` to choose.
    """
    from ..algorithms.naive import RobustBestFit
    from ..store import DurableStore, diff_placements, recover
    cfg = config if config is not None else SoakConfig()
    if crash_after is None:
        crash_after = cfg.operations // 2
    if not (0 < crash_after <= cfg.operations):
        raise ConfigurationError(
            f"crash_after must be in [1, {cfg.operations}], "
            f"got {crash_after}")
    rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    store = DurableStore(store_dir, segment_records=segment_records,
                         obs=gated)
    algorithm.attach_store(store)
    result = SoakResult(algorithm=algorithm.name)
    driver = _SoakDriver(algorithm, cfg, rng, result, gated,
                         checkpoint_every=checkpoint_every)
    for op_index in range(crash_after):
        driver.step(op_index)

    # Simulated crash: the controller objects are dropped with no
    # shutdown — no close(), no final checkpoint.  Under the WAL's
    # default "always" fsync policy every committed record is already
    # durable, so nothing the stream applied is lost.
    pre_crash = algorithm.placement
    recovered = recover(store_dir, obs=gated)
    # Tags are checkpoint-durable only (see docs/durability.md);
    # replica assignments, loads, and server inventory must be exact.
    diffs = diff_placements(pre_crash, recovered.placement,
                            compare_tags=False)
    budget = driver.budget
    if resume_factory is None:
        gamma = recovered.gamma
        capacity = recovered.capacity

        def resume_factory():
            return RobustBestFit(gamma=gamma, failures=budget,
                                 capacity=capacity)

    resume = resume_factory()
    if gated is not None:
        resume.attach_obs(gated)
    resume.adopt(recovered.placement)
    if sorted(driver.alive) != recovered.placement.tenant_ids:
        diffs = diffs + [
            f"alive tenant set diverged: workload has "
            f"{len(driver.alive)} tenants, recovered placement has "
            f"{len(recovered.placement.tenant_ids)}"]
    reopened = DurableStore(store_dir, segment_records=segment_records,
                            obs=gated)
    resume.attach_store(reopened)
    resumed_driver = _SoakDriver(resume, cfg, rng, result, gated,
                                 checkpoint_every=checkpoint_every,
                                 alive=driver.alive,
                                 next_id=driver.next_id)
    for op_index in range(crash_after, cfg.operations):
        resumed_driver.step(op_index)
    resumed_driver.finish()
    reopened.close()
    return CrashRecoveryReport(
        result=result, crash_after=crash_after,
        records_replayed=recovered.records_replayed,
        checkpoint_seq=recovered.checkpoint_seq,
        diffs=diffs, audit_ok=recovered.audit.ok,
        min_slack=recovered.audit.min_slack)
