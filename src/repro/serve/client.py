"""Blocking client for the placement service.

:class:`ServeClient` speaks the JSONL protocol over a unix-domain
socket: one request frame out, one response frame back, typed errors
rehydrated into the exact :class:`~repro.errors.ReproError` subclass
the server raised (:func:`repro.serve.protocol.raise_error`).

The client is deliberately simple — synchronous, one in-flight request
— because the drills and the CLI both want *legible* traffic: every
acked placement is one committed WAL record, in order, which is what
the recovery differential is checked against.

`place_retry` wraps ``place`` with the backpressure contract: a
:class:`~repro.errors.BackpressureError` rejection is slept off using
the server's own ``retry_after`` hint, then retried.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import BackpressureError, ConfigurationError, ProtocolError
from .protocol import (MAX_FRAME_BYTES, encode_request, parse_response,
                       raise_error, read_frame)

PathLike = Union[str, Path]


class ServeClient:
    """One synchronous connection to a :class:`PlacementServer`."""

    def __init__(self, socket_path: PathLike,
                 timeout: Optional[float] = 10.0) -> None:
        self.socket_path = Path(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(str(self.socket_path))
        except OSError as err:
            self._sock.close()
            raise ConfigurationError(
                f"cannot connect to {self.socket_path}: {err}") from None
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._closed = False

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- request plumbing ---------------------------------------------
    def call(self, verb: str, **params) -> Dict[str, object]:
        """Send one request, wait for its response, return the result.

        Raises the typed :class:`~repro.errors.ReproError` carried by an
        ``ok: false`` response, or :class:`ProtocolError` if the server
        hung up mid-request (e.g. it crashed under us).
        """
        if self._closed:
            raise ProtocolError("client is closed")
        self._next_id += 1
        request_id = self._next_id
        try:
            self._sock.sendall(encode_request(request_id, verb,
                                              **params))
            line = read_frame(self._reader, MAX_FRAME_BYTES)
        except OSError as err:
            # Reset, timeout, broken pipe: the session is gone — one
            # typed error, whatever the kernel called it.
            self._closed = True
            raise ProtocolError(
                f"connection to {self.socket_path} severed "
                f"mid-request: {err}") from None
        if line is None:
            self._closed = True
            raise ProtocolError(
                "server closed the connection mid-request")
        got_id, body = parse_response(line)
        if body.get("ok"):
            if got_id != request_id:
                raise ProtocolError(
                    f"response id {got_id!r} does not match "
                    f"request id {request_id!r}")
            return body.get("result", {})
        # Typed rejection: protocol errors for unreadable frames come
        # back with id null — they still answer this request.
        if got_id is not None and got_id != request_id:
            raise ProtocolError(
                f"error response id {got_id!r} does not match "
                f"request id {request_id!r}")
        raise_error(body)

    # -- verbs ---------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.call("ping")

    def place(self, tenant: int, load: float) -> List[int]:
        return list(self.call("place", tenant=tenant, load=load)
                    ["servers"])

    def place_retry(self, tenant: int, load: float,
                    attempts: int = 50) -> List[int]:
        """``place`` honouring the backpressure contract: sleep the
        server's ``retry_after`` hint and retry, up to ``attempts``."""
        for _ in range(attempts - 1):
            try:
                return self.place(tenant, load)
            except BackpressureError as err:
                time.sleep(max(err.retry_after, 0.001))
        return self.place(tenant, load)

    def remove(self, tenant: int) -> None:
        self.call("remove", tenant=tenant)

    def update_load(self, tenant: int, load: float) -> List[int]:
        return list(self.call("update_load", tenant=tenant, load=load)
                    ["servers"])

    def stats(self) -> Dict[str, object]:
        return self.call("stats")

    def checkpoint(self) -> Dict[str, object]:
        return self.call("checkpoint")


def wait_until_ready(socket_path: PathLike, timeout: float = 10.0,
                     interval: float = 0.02) -> None:
    """Poll the socket with ``ping`` until the daemon answers.

    Raises :class:`~repro.errors.ConfigurationError` when the deadline
    passes — the caller (drill, CI smoke) gets a hard failure rather
    than racing a half-started daemon.
    """
    deadline = time.monotonic() + timeout
    last_err: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(socket_path, timeout=2.0) as client:
                client.ping()
                return
        except (ConfigurationError, ProtocolError, OSError) as err:
            last_err = err
            time.sleep(interval)
    raise ConfigurationError(
        f"placement service at {socket_path} not ready after "
        f"{timeout:.1f}s: {last_err}")


__all__ = ["ServeClient", "wait_until_ready"]
