"""Per-tenant background maintenance work.

Real multi-tenant data systems pay a fixed per-tenant cost on every host
of the tenant's data — checkpointing, statistics refresh, vacuum-like
maintenance, replication bookkeeping — independent of query traffic.
This is the mechanistic source of the ``beta`` term in the paper's
linear load model ``delta*c + beta``: each additional tenant hosted on a
server consumes a slice of capacity even with zero clients.

We model it as a recurring job per (tenant, hosting machine): every
exponentially distributed interval, a small maintenance query runs on
the machine.  Expected capacity fraction per tenant:
``demand / (interval * cores)``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import SimulationError
from .engine import Simulator
from .machine import Machine

#: Mean seconds between maintenance runs of one tenant on one machine.
DEFAULT_MAINTENANCE_INTERVAL = 5.0

#: Core-seconds of work per maintenance run.  With 12 cores and a 5 s
#: interval this is ~1% of server capacity per hosted tenant — the
#: ``beta`` the calibration recovers.
DEFAULT_MAINTENANCE_DEMAND = 0.6


class MaintenanceTask:
    """Recurring background job for one tenant on one machine.

    The tenant's total maintenance cycle (calibrated on a single
    unreplicated machine at ``interval``) is *shared* between the
    tenant's surviving replicas: each home runs at ``interval *
    alive_homes()``.  When a sibling replica's server fails, the
    survivors' divisor shrinks and they absorb the failed replica's
    share — maintenance load fails over exactly like query load.
    """

    def __init__(self, sim: Simulator, machine: Machine, tenant_id: int,
                 rng: np.random.Generator,
                 interval: float = DEFAULT_MAINTENANCE_INTERVAL,
                 demand: float = DEFAULT_MAINTENANCE_DEMAND,
                 alive_homes: Optional[Callable[[], int]] = None) -> None:
        if interval <= 0:
            raise SimulationError(
                f"maintenance interval must be positive, got {interval}")
        if demand <= 0:
            raise SimulationError(
                f"maintenance demand must be positive, got {demand}")
        self.sim = sim
        self.machine = machine
        self.tenant_id = tenant_id
        self.rng = rng
        self.interval = interval
        self.demand = demand
        self.alive_homes = alive_homes
        self.runs = 0
        self._stopped = False

    def _effective_interval(self) -> float:
        divisor = 1
        if self.alive_homes is not None:
            divisor = max(1, self.alive_homes())
        return self.interval * divisor

    def start(self) -> None:
        """Begin the cycle at a random phase (avoids synchronized runs)."""
        delay = float(self.rng.uniform(0.0, self._effective_interval()))
        self.sim.schedule(delay, self._run)

    def stop(self) -> None:
        self._stopped = True

    def _run(self) -> None:
        if self._stopped or self.machine.failed:
            return
        self.runs += 1
        self.machine.submit(self.demand, self._completed)

    def _completed(self) -> None:
        if self._stopped or self.machine.failed:
            return
        delay = float(self.rng.exponential(self._effective_interval()))
        self.sim.schedule(delay, self._run)
