"""Packing diagnostics: where did the capacity go?

A robust packing spends each server's unit capacity on three things:

* **used** — replica load actually hosted;
* **reserve** — headroom that must stay empty so the worst
  ``failures``-failure failover fits (the price of robustness);
* **slack** — capacity that is neither used nor required as reserve:
  genuine fragmentation the algorithm failed to sell.

:func:`explain` decomposes a placement along these lines, per server
and per CUBEFIT class, which is how one *sees* why an algorithm used
the servers it did — e.g. RFI's larger reserve on shared-heavy servers,
or CUBEFIT's slack concentrated in the last, immature group of each
class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.placement import PlacementState
from ..errors import ConfigurationError
from .report import Table
from .stats import mean


@dataclass(frozen=True)
class ServerBreakdown:
    """Capacity decomposition of one server."""

    server_id: int
    capacity: float
    used: float
    reserve: float
    replicas: int
    tenants_shared_with: int
    bin_class: Optional[int] = None

    @property
    def slack(self) -> float:
        return max(0.0, self.capacity - self.used - self.reserve)

    @property
    def utilization(self) -> float:
        return self.used / self.capacity if self.capacity else 0.0


@dataclass
class PackingReport:
    """Whole-placement capacity decomposition."""

    failures: int
    servers: List[ServerBreakdown] = field(default_factory=list)

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def total_used(self) -> float:
        return sum(s.used for s in self.servers)

    @property
    def total_reserve(self) -> float:
        return sum(s.reserve for s in self.servers)

    @property
    def total_slack(self) -> float:
        return sum(s.slack for s in self.servers)

    @property
    def mean_utilization(self) -> float:
        if not self.servers:
            return 0.0
        return mean([s.utilization for s in self.servers])

    def fraction(self, which: str) -> float:
        """Share of total capacity spent on used/reserve/slack."""
        total = sum(s.capacity for s in self.servers)
        if total <= 0:
            return 0.0
        value = {"used": self.total_used, "reserve": self.total_reserve,
                 "slack": self.total_slack}.get(which)
        if value is None:
            raise ConfigurationError(
                f"which must be used/reserve/slack, got {which!r}")
        return value / total

    def by_class(self) -> Dict[Optional[int], List[ServerBreakdown]]:
        grouped: Dict[Optional[int], List[ServerBreakdown]] = {}
        for server in self.servers:
            grouped.setdefault(server.bin_class, []).append(server)
        return grouped

    def to_table(self) -> Table:
        """Per-class summary table (class None = untagged servers)."""
        table = Table(
            title=f"Packing breakdown ({self.num_servers} non-empty "
                  f"servers, {self.failures}-failure reserve)",
            columns=["class", "servers", "mean_used", "mean_reserve",
                     "mean_slack", "mean_utilization"])
        for bin_class, servers in sorted(
                self.by_class().items(),
                key=lambda kv: (kv[0] is None, kv[0])):
            table.add_row(
                bin_class if bin_class is not None else "-",
                len(servers),
                round(mean([s.used for s in servers]), 3),
                round(mean([s.reserve for s in servers]), 3),
                round(mean([s.slack for s in servers]), 3),
                round(mean([s.utilization for s in servers]), 3))
        return table

    def __str__(self) -> str:
        head = (f"capacity split: used {self.fraction('used'):.1%}, "
                f"reserve {self.fraction('reserve'):.1%}, "
                f"slack {self.fraction('slack'):.1%}")
        return head + "\n" + self.to_table().to_text()


def explain(placement: PlacementState,
            failures: Optional[int] = None) -> PackingReport:
    """Decompose every non-empty server of ``placement``.

    ``failures`` defaults to ``gamma - 1``.  The reserve is the exact
    worst-case failover load (top-``failures`` shared partners), i.e.
    the minimum headroom the robustness condition forces the server to
    keep.
    """
    f = placement.gamma - 1 if failures is None else failures
    report = PackingReport(failures=f)
    for server in placement:
        if len(server) == 0:
            continue
        reserve = placement.worst_failover_load(server.server_id, f)
        report.servers.append(ServerBreakdown(
            server_id=server.server_id,
            capacity=server.capacity,
            used=server.load,
            reserve=min(reserve, server.capacity - server.load),
            replicas=len(server),
            tenants_shared_with=len(
                placement.shared_partners(server.server_id)),
            bin_class=server.tags.get("class"),
        ))
    return report
