"""Shared fixtures for the whole test suite.

Three families:

* **Seeded workloads** — ``seeded_loads`` / ``seeded_tenants`` build
  the ``default_rng(seed).uniform(...)`` load lists that most
  algorithm tests use, so every test names its seed instead of
  open-coding the generator.
* **Durable stores** — ``store_factory`` creates
  :class:`repro.store.DurableStore` instances under the test's tmp
  dir and guarantees they are closed at teardown (a leaked open WAL
  file handle hides fsync/close bugs from later tests).
* **Failpoint hygiene** — the autouse ``clean_failpoints`` fixture
  clears the global registry around every test, so an armed failpoint
  or a leftover fire count can never leak across tests (the seams are
  compiled into production code paths and consult process-global
  state).
"""

import numpy as np
import pytest

from repro import faults

#: Seed used when a test does not care which seed it gets.
DEFAULT_WORKLOAD_SEED = 53


@pytest.fixture(autouse=True)
def clean_failpoints():
    """Reset the global failpoint registry around every test."""
    faults.FAILPOINTS.clear()
    faults.FAILPOINTS.reset_counts()
    faults.FAILPOINTS.attach_obs(None)
    yield
    faults.FAILPOINTS.clear()
    faults.FAILPOINTS.reset_counts()
    faults.FAILPOINTS.attach_obs(None)


@pytest.fixture
def seeded_rng():
    """Factory for explicitly seeded numpy generators: tests that need
    draws beyond a load list (server choices, trial loops) name their
    seed through this instead of importing numpy themselves."""
    def make(seed=DEFAULT_WORKLOAD_SEED):
        return np.random.default_rng(seed)
    return make


@pytest.fixture
def seeded_loads():
    """Factory for the canonical seeded uniform load lists.

    ``seeded_loads(200, seed=53)`` is byte-identical to the historical
    ``list(np.random.default_rng(53).uniform(0.01, 1.0, 200))``.
    """
    def make(n, low=0.01, high=1.0, seed=DEFAULT_WORKLOAD_SEED):
        rng = np.random.default_rng(seed)
        return list(rng.uniform(low, high, n))
    return make


@pytest.fixture
def seeded_tenants(seeded_loads):
    """Factory producing ``make_tenants`` sequences from seeded loads."""
    from repro.core.tenant import make_tenants

    def make(n, low=0.01, high=1.0, seed=DEFAULT_WORKLOAD_SEED):
        return make_tenants(seeded_loads(n, low, high, seed))
    return make


@pytest.fixture
def store_factory(tmp_path):
    """Factory for durable stores under ``tmp_path``; closes them all
    at teardown regardless of test outcome."""
    from repro.store import DurableStore

    stores = []

    def make(name="st", **kwargs):
        store = DurableStore(tmp_path / name, **kwargs)
        stores.append(store)
        return store

    yield make
    for store in stores:
        try:
            store.close()
        except Exception:
            pass  # the test already broke the store on purpose
