"""Durable placement store: checkpoint + WAL tail = restartable controller.

:class:`DurableStore` ties the pieces together for one controller run:

* a ``wal/`` directory holding the segmented
  :class:`~repro.store.wal.WriteAheadLog`,
* ``checkpoint.json`` — the latest v2 checkpoint
  (:mod:`repro.store.snapshot`),
* ``meta.json`` — the run's invariants (gamma, capacity, algorithm
  name, audited failure budget), written when an algorithm is bound.

The algorithm side is wired through
:meth:`~repro.algorithms.base.OnlinePlacementAlgorithm.attach_store`:
the instrumented ``place`` / ``remove`` / ``update_load`` wrappers log
one record per committed operation (plus ``open_server`` records for
every server the operation provisioned, via the
:meth:`DurableStore.log_open_through` watermark).  Harness-level
mutations that bypass the algorithm hooks — the failure-recovery
planner's per-replica moves, the repacker's migrations — are logged
explicitly with :meth:`DurableStore.log_move` /
:meth:`DurableStore.log_migrate`.

Recovery (:func:`recover`) restores the latest checkpoint, replays only
the WAL records at or after the checkpoint's ``wal_applied`` watermark
(O(tail), not O(history) — whole pre-checkpoint segments are skipped
unparsed), runs the full ``failures``-failure robustness audit, and only
then hands the state back.  :meth:`DurableStore.compact` deletes the WAL
segments a checkpoint has made redundant; compaction never changes what
:func:`recover` returns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.placement import PlacementState
from ..core.tenant import Replica, Tenant
from ..core.validation import AuditReport, audit
from ..errors import (ConfigurationError, PlacementError,
                      StoreCorruptionError)
from .snapshot import load_checkpoint, save_checkpoint
from .wal import FSYNC_ALWAYS, WriteAheadLog

PathLike = Union[str, Path]

META_FORMAT = "repro-store-meta"
META_VERSION = 1

META_NAME = "meta.json"
CHECKPOINT_NAME = "checkpoint.json"
WAL_DIRNAME = "wal"


@dataclass
class RecoveredState:
    """What :func:`recover` hands back after a successful audit."""

    #: The reconstructed placement (replica-for-replica identical to the
    #: crashed controller's committed state).
    placement: PlacementState
    #: Algorithm name recorded in ``meta.json`` ("" if never bound).
    algorithm: str
    gamma: int
    capacity: float
    #: Failure budget the post-recovery audit was run with.
    failures: int
    #: WAL watermark the checkpoint covered (0 = no checkpoint).
    checkpoint_seq: int
    #: WAL records replayed on top of the checkpoint (the *k* in O(k)).
    records_replayed: int
    #: Sequence number the next committed operation will get.
    next_seq: int
    #: The robustness audit the state passed before being handed back.
    audit: AuditReport


class DurableStore:
    """Checkpointed write-ahead store for one controller's placement.

    Parameters
    ----------
    directory:
        Store root (``meta.json``, ``checkpoint.json``, ``wal/``).
    fsync / segment_records:
        Passed through to :class:`~repro.store.wal.WriteAheadLog`.
    create:
        Create the directory if missing (default).  Read paths —
        :func:`recover`, the CLI ``recover`` subcommand — pass ``False``
        so a typoed path is a :class:`ConfigurationError`, not a fresh
        empty store that "recovers" to nothing.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry`; gated through the
        global ``repro.obs`` off-switch like every other attachment.
    """

    def __init__(self, directory: PathLike, fsync: str = FSYNC_ALWAYS,
                 segment_records: int = 512, create: bool = True,
                 obs=None) -> None:
        self.directory = Path(directory)
        if not create and not self.directory.is_dir():
            raise ConfigurationError(
                f"store directory {self.directory} does not exist")
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.directory / WAL_DIRNAME,
                                 fsync=fsync,
                                 segment_records=segment_records)
        from ..obs import active
        self._obs = active(obs)
        #: Highest server id for which an ``open_server`` record exists
        #: (as a count); maintained by :meth:`log_open_through`.
        self._servers_logged = 0
        self._meta: Optional[Dict[str, object]] = None
        meta_path = self.directory / META_NAME
        if meta_path.exists():
            self._meta = _read_meta(meta_path)

    # ------------------------------------------------------------------
    # Paths / metadata
    # ------------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.directory / META_NAME

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    @property
    def meta(self) -> Optional[Dict[str, object]]:
        """The bound run's invariants, if :meth:`bind` has happened."""
        return dict(self._meta) if self._meta is not None else None

    @property
    def has_state(self) -> bool:
        """Whether this directory holds anything :meth:`recover` could
        rebuild from (a bound ``meta.json`` or a checkpoint).

        Long-lived services use this to decide between a cold start
        (fresh placement) and a warm start (recover and adopt) without
        duplicating the recovery preconditions.
        """
        return self._meta is not None or self.checkpoint_path.exists()

    def attach_obs(self, registry) -> None:
        from ..obs import active
        self._obs = active(registry)

    def bind(self, algorithm) -> None:
        """Associate this store with ``algorithm`` (and vice versa not —
        call :meth:`~repro.algorithms.base.OnlinePlacementAlgorithm.attach_store`
        on the algorithm, which delegates here).

        Writes ``meta.json`` on first bind; on a re-bind (crash resume)
        verifies that gamma and capacity still match the recorded run.
        The ``open_server`` watermark starts at the placement's current
        next-server-id: servers that already exist are part of the
        recovered history, not new operations.
        """
        meta = {
            "format": META_FORMAT,
            "version": META_VERSION,
            "algorithm": algorithm.name,
            "gamma": algorithm.gamma,
            "capacity": algorithm.placement.capacity,
            "failures": algorithm.guaranteed_failures,
        }
        if self._meta is not None:
            for key in ("gamma", "capacity"):
                if self._meta.get(key) != meta[key]:
                    raise ConfigurationError(
                        f"store {self.directory} was created with "
                        f"{key}={self._meta.get(key)!r}; cannot bind an "
                        f"algorithm with {key}={meta[key]!r}")
        _write_meta(self.meta_path, meta)
        self._meta = meta
        self._servers_logged = algorithm.placement._next_server_id

    # ------------------------------------------------------------------
    # Logging (one call per committed operation)
    # ------------------------------------------------------------------
    def _append(self, op: str, data: Dict[str, object]) -> int:
        seq = self.wal.append(op, data)
        if self._obs is not None:
            self._obs.counter("store.wal_append").inc()
        return seq

    def log_open_through(self, next_server_id: int) -> None:
        """Emit ``open_server`` records for every server id in
        ``[watermark, next_server_id)``.

        The algorithm wrappers call this *before* logging the operation
        that opened the servers, so replay provisions servers before any
        record references them.
        """
        while self._servers_logged < next_server_id:
            self._append("open_server", {"server": self._servers_logged})
            self._servers_logged += 1

    def log_place(self, tenant_id: int, load: float,
                  servers: Sequence[int]) -> None:
        self._append("place", {"tenant": tenant_id, "load": load,
                               "servers": list(servers)})

    def log_remove(self, tenant_id: int) -> None:
        self._append("remove", {"tenant": tenant_id})

    def log_update_load(self, tenant_id: int, load: float,
                        servers: Sequence[int]) -> None:
        self._append("update_load", {"tenant": tenant_id, "load": load,
                                     "servers": list(servers)})

    def log_move(self, tenant_id: int, index: int, load: float,
                 source: int, target: int) -> None:
        """One per-replica move (failure recovery's primitive)."""
        self._append("move", {"tenant": tenant_id, "index": index,
                              "load": load, "source": source,
                              "target": target})

    def log_migrate(self, tenant_id: int, load: float,
                    targets: Sequence[int]) -> None:
        """One whole-tenant migration (the repacker's primitive)."""
        self._append("migrate", {"tenant": tenant_id, "load": load,
                                 "targets": list(targets)})

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------
    def checkpoint(self, placement: PlacementState) -> Path:
        """Write a checkpoint covering every record committed so far.

        The WAL is flushed first so the recorded ``wal_applied``
        watermark never runs ahead of durable records.
        """
        self.wal.flush()
        algorithm = ""
        if self._meta is not None:
            algorithm = str(self._meta.get("algorithm", ""))
        save_checkpoint(placement, self.checkpoint_path,
                        wal_applied=self.wal.next_seq,
                        algorithm=algorithm)
        if self._obs is not None:
            self._obs.counter("store.checkpoint").inc()
            self._obs.emit("checkpoint", wal_applied=self.wal.next_seq,
                           servers=placement.num_servers,
                           tenants=placement.num_tenants)
        return self.checkpoint_path

    def compact(self) -> List[Path]:
        """Drop WAL segments the latest checkpoint made redundant.

        Only whole segments strictly below the checkpoint's
        ``wal_applied`` watermark are deleted, so recovery after
        compaction replays exactly the records it would have replayed
        before.  A no-op when no checkpoint exists.
        """
        if not self.checkpoint_path.exists():
            return []
        watermark = load_checkpoint(self.checkpoint_path).wal_applied
        removed = self.wal.truncate_before(watermark)
        if self._obs is not None and removed:
            self._obs.counter("store.compact.segments").inc(len(removed))
            self._obs.emit("compact", watermark=watermark,
                           segments=[p.name for p in removed])
        return removed

    def checkpoint_and_compact(self, placement: PlacementState
                               ) -> Tuple[Path, List[Path]]:
        """Checkpoint ``placement`` and drop the WAL segments the new
        checkpoint made redundant, in one call.

        The maintenance step of the long-running service: the
        checkpoint timer and the graceful-shutdown path both run it, so
        the two cannot drift apart on ordering (checkpoint strictly
        before compaction — compacting first would delete records the
        old checkpoint still needs).
        """
        path = self.checkpoint(placement)
        removed = self.compact()
        return path, removed

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, audit_failures: Optional[int] = None
                ) -> RecoveredState:
        """Rebuild the committed placement state from disk.

        Checkpoint first (if any), then the WAL tail; the result must
        pass the full robustness audit at ``audit_failures`` (default:
        the bound run's budget from ``meta.json``, else ``gamma - 1``)
        or :class:`~repro.errors.RobustnessViolation` is raised.
        """
        meta = self._meta
        checkpoint = None
        if self.checkpoint_path.exists():
            checkpoint = load_checkpoint(self.checkpoint_path)
        if meta is None and checkpoint is None:
            raise ConfigurationError(
                f"store {self.directory} has neither meta.json nor a "
                f"checkpoint; nothing to recover")
        if checkpoint is not None:
            gamma = checkpoint.gamma
            capacity = checkpoint.capacity
            start_seq = checkpoint.wal_applied
            if start_seq > self.wal.next_seq:
                raise StoreCorruptionError(
                    f"checkpoint covers {start_seq} WAL records but only "
                    f"{self.wal.next_seq} are on disk; the WAL was "
                    f"truncated past the checkpoint")
            placement = checkpoint.restore()
            algorithm = checkpoint.algorithm
        else:
            gamma = int(meta["gamma"])
            capacity = float(meta["capacity"])
            start_seq = 0
            placement = PlacementState(gamma=gamma, capacity=capacity)
            algorithm = str(meta.get("algorithm", ""))
        if meta is not None:
            if int(meta["gamma"]) != gamma:
                raise StoreCorruptionError(
                    f"meta.json gamma {meta['gamma']} != checkpoint "
                    f"gamma {gamma}")
            failures = int(meta.get("failures", gamma - 1))
        else:
            failures = gamma - 1
        if audit_failures is not None:
            failures = audit_failures

        from .. import faults
        if faults.active():
            # Recovery interrupted before the WAL tail replay: nothing
            # was mutated, a retry starts from scratch.
            faults.fire("store.recover.replay")
        replayed = 0
        for record in self.wal.records(start_seq):
            try:
                _apply(placement, record.op, record.data)
            except (PlacementError, ConfigurationError, KeyError,
                    TypeError, ValueError) as err:
                raise StoreCorruptionError(
                    f"WAL record seq={record.seq} op={record.op!r} "
                    f"cannot be replayed: {err}") from None
            replayed += 1

        report = audit(placement, failures)
        if self._obs is not None:
            self._obs.counter("store.recover.records_replayed") \
                .inc(replayed)
            self._obs.counter("store.recover").inc()
            self._obs.emit("recover", checkpoint_seq=start_seq,
                           records_replayed=replayed,
                           servers=placement.num_servers,
                           tenants=placement.num_tenants,
                           audit_ok=report.ok)
        report.raise_if_violated()
        return RecoveredState(
            placement=placement, algorithm=algorithm, gamma=gamma,
            capacity=capacity, failures=failures,
            checkpoint_seq=start_seq, records_replayed=replayed,
            next_seq=self.wal.next_seq, audit=report)


def recover(directory: PathLike, obs=None,
            audit_failures: Optional[int] = None) -> RecoveredState:
    """Recover the committed state from an existing store directory.

    Convenience wrapper: opens the store read-style (``create=False``,
    so a wrong path raises :class:`~repro.errors.ConfigurationError`)
    and delegates to :meth:`DurableStore.recover`.
    """
    with DurableStore(directory, create=False, obs=obs) as store:
        return store.recover(audit_failures=audit_failures)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def _apply(placement: PlacementState, op: str,
           data: Dict[str, object]) -> None:
    """Apply one WAL record to ``placement``.

    Replay uses the *recorded* server choices, not the algorithm — the
    log captures decisions, so recovery is deterministic regardless of
    which algorithm produced them.  ``place``-style records rely on the
    ``_place`` contract that replica ``j`` landed on ``servers[j]``.
    """
    if op == "open_server":
        expected = int(data["server"])
        if placement._next_server_id != expected:
            raise StoreCorruptionError(
                f"open_server record for id {expected} but placement "
                f"would assign {placement._next_server_id}")
        placement.open_server()
    elif op == "place":
        placement.place_tenant(
            Tenant(int(data["tenant"]), float(data["load"])),
            [int(s) for s in data["servers"]])
    elif op == "remove":
        placement.remove_tenant(int(data["tenant"]))
    elif op == "update_load":
        tenant_id = int(data["tenant"])
        placement.remove_tenant(tenant_id)
        placement.place_tenant(
            Tenant(tenant_id, float(data["load"])),
            [int(s) for s in data["servers"]])
    elif op == "move":
        tenant_id = int(data["tenant"])
        index = int(data["index"])
        placement.unplace((tenant_id, index), int(data["source"]))
        placement.place(
            Replica(tenant_id=tenant_id, index=index,
                    load=float(data["load"])),
            int(data["target"]))
    elif op == "migrate":
        tenant_id = int(data["tenant"])
        placement.remove_tenant(tenant_id)
        placement.place_tenant(
            Tenant(tenant_id, float(data["load"])),
            [int(s) for s in data["targets"]])
    else:
        raise StoreCorruptionError(f"unknown WAL op {op!r}")


# ---------------------------------------------------------------------------
# meta.json helpers
# ---------------------------------------------------------------------------
def _read_meta(path: Path) -> Dict[str, object]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise ConfigurationError(
            f"cannot read store metadata {path}: {err}") from err
    if payload.get("format") != META_FORMAT:
        raise ConfigurationError(
            f"{path}: expected format {META_FORMAT!r}, got "
            f"{payload.get('format')!r}")
    if payload.get("version") != META_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported store-meta version "
            f"{payload.get('version')!r}")
    return payload


def _write_meta(path: Path, meta: Dict[str, object]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


__all__ = ["DurableStore", "RecoveredState", "recover"]
