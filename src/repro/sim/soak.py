"""Soak testing: a randomized operation stream with continuous audits.

Unit and property tests exercise operations in isolation; the soak
harness interleaves *everything* the library supports — arrivals,
departures, elastic resizes, server failures with re-replication, and
repacking passes — against one placement, auditing the robustness
condition after every operation.  It is the closest thing to a chaos
test a packing data structure can have, and it doubles as a throughput
measurement for mixed workloads.

Run via ``python -m repro soak`` or directly::

    from repro.sim.soak import SoakConfig, run_soak
    result = run_soak(lambda: CubeFit(gamma=2, num_classes=10))
    assert result.violations == 0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..algorithms.base import OnlinePlacementAlgorithm
from ..algorithms.repack import Repacker
from ..core.recovery import RecoveryPlanner
from ..core.tenant import Tenant
from ..core.validation import IncrementalAuditor, audit
from ..errors import ConfigurationError

#: Operation mix weights (normalized at run time).
DEFAULT_MIX = {
    "place": 5.0,
    "remove": 3.0,
    "resize": 2.0,
    "fail_and_recover": 0.3,
    "repack": 0.1,
}


@dataclass(frozen=True)
class SoakConfig:
    """Parameters of a soak run."""

    operations: int = 500
    #: Operation mix; keys as in DEFAULT_MIX.
    mix: Optional[Dict[str, float]] = None
    #: Audit after every operation (True) or only at the end.
    audit_each: bool = True
    min_load: float = 0.02
    max_load: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ConfigurationError("operations must be >= 1")
        if not (0 < self.min_load <= self.max_load <= 1.0):
            raise ConfigurationError(
                "need 0 < min_load <= max_load <= 1")
        if self.mix is not None:
            unknown = set(self.mix) - set(DEFAULT_MIX)
            if unknown:
                raise ConfigurationError(
                    f"unknown soak operations: {sorted(unknown)}")


@dataclass
class SoakResult:
    """Outcome of a soak run."""

    algorithm: str
    operations: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    violations: int = 0
    first_violation_op: Optional[int] = None
    final_tenants: int = 0
    final_servers: int = 0
    recovered_replicas: int = 0
    repacked_servers: int = 0
    #: Metrics snapshot of the run (None when not instrumented).
    metrics: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def __str__(self) -> str:
        status = "OK" if self.ok else \
            f"{self.violations} AUDIT VIOLATIONS " \
            f"(first at op {self.first_violation_op})"
        ops = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return (f"SoakResult({self.algorithm}: {self.operations} ops "
                f"[{ops}]; {self.final_tenants} tenants on "
                f"{self.final_servers} servers; {status})")


def run_soak(factory: Callable[[], OnlinePlacementAlgorithm],
             config: Optional[SoakConfig] = None,
             obs=None) -> SoakResult:
    """Drive one algorithm through the randomized operation stream.

    ``obs`` (a :class:`~repro.obs.MetricsRegistry`) instruments the run:
    the algorithm journals every place/remove/resize, the harness
    journals every ``fail_and_recover`` and ``repack``, and the final
    snapshot lands in ``SoakResult.metrics``.  Replaying the run's
    journal therefore yields exactly the operation counts recorded in
    ``SoakResult.counts``.
    """
    cfg = config if config is not None else SoakConfig()
    rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    placement = algorithm.placement
    mix = dict(DEFAULT_MIX)
    if cfg.mix:
        mix.update(cfg.mix)
    names = sorted(mix)
    weights = np.array([mix[n] for n in names], dtype=float)
    weights /= weights.sum()

    result = SoakResult(algorithm=algorithm.name)
    alive: List[int] = []
    next_id = 0

    budget = algorithm.guaranteed_failures
    # Audit-per-operation is the soak's dominant cost; the incremental
    # auditor re-evaluates only servers the operation touched.
    auditor = IncrementalAuditor(placement, failures=budget) \
        if cfg.audit_each else None

    def check(op_index: int) -> None:
        if auditor is None:
            return
        if not auditor.check().ok:
            result.violations += 1
            if result.first_violation_op is None:
                result.first_violation_op = op_index

    for op_index in range(cfg.operations):
        op = str(rng.choice(names, p=weights))
        if op in ("remove", "resize", "fail_and_recover") and not alive:
            op = "place"
        if op == "fail_and_recover" and \
                (placement.gamma < 2 or budget == 0):
            # No failure budget to spend: gamma=1 keeps no redundancy
            # (guaranteed_failures is 0) and the 1..gamma-1 failure
            # count drawn below would be an empty range.
            op = "place"
        if op == "repack" and placement.num_nonempty_servers < 4:
            op = "place"
        result.counts[op] = result.counts.get(op, 0) + 1
        result.operations += 1

        if op == "place":
            load = float(rng.uniform(cfg.min_load, cfg.max_load))
            algorithm.place(Tenant(next_id, load))
            alive.append(next_id)
            next_id += 1
        elif op == "remove":
            victim = alive.pop(int(rng.integers(len(alive))))
            algorithm.remove(victim)
        elif op == "resize":
            tenant_id = alive[int(rng.integers(len(alive)))]
            load = float(rng.uniform(cfg.min_load, cfg.max_load))
            algorithm.update_load(tenant_id, load)
        elif op == "fail_and_recover":
            nonempty = [s.server_id for s in placement if len(s) > 0]
            # Fail at most gamma-1 servers (the robustness budget) and
            # never more than exist; the range is non-empty because
            # gamma < 2 was converted to "place" above.
            count = min(len(nonempty),
                        int(rng.integers(1, placement.gamma)))
            victims = [int(v) for v in rng.choice(nonempty, size=count,
                                                  replace=False)]
            plan = RecoveryPlanner(placement, failures=budget,
                                   obs=gated).recover(victims)
            result.recovered_replicas += plan.replicas_relocated
            if gated is not None:
                gated.counter("soak.servers_failed").inc(count)
                gated.emit("fail_and_recover", victims=victims,
                           relocated=plan.replicas_relocated)
        elif op == "repack":
            plan = Repacker(placement, failures=budget,
                            obs=gated).repack(max_drains=2)
            result.repacked_servers += len(plan.drained_servers)
            if gated is not None:
                gated.emit("repack",
                           drained=list(plan.drained_servers),
                           migrations=len(plan.migrations))
        check(op_index)

    if not cfg.audit_each and not audit(placement,
                                        failures=budget).ok:
        result.violations += 1
        result.first_violation_op = cfg.operations - 1
    result.final_tenants = placement.num_tenants
    result.final_servers = placement.num_nonempty_servers
    if gated is not None:
        result.metrics = gated.snapshot()
    return result
