"""Tenant churn simulation: arrivals and departures over time.

The paper's model is arrival-only; real multi-tenant fleets also lose
tenants.  This harness drives a placement algorithm with a birth-death
workload — Poisson arrivals, exponential tenant lifetimes — and samples
fleet statistics over time, exposing how well each algorithm's freed
space is reclaimed (CUBEFIT's first stage and the checked baselines
reuse departure holes through their normal candidate search).

The simulation is event-driven in *logical* time: what matters to the
placement question is the interleaving of arrivals and departures, not
query-level dynamics (that is :mod:`repro.cluster`'s job).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..algorithms.base import OnlinePlacementAlgorithm
from ..analysis.report import Table
from ..core.tenant import Tenant
from ..core.validation import audit
from ..errors import ConfigurationError
from ..workloads.distributions import LoadDistribution


@dataclass(frozen=True)
class ChurnConfig:
    """Birth-death workload parameters.

    ``arrival_rate`` tenants arrive per unit time; each lives for an
    exponential time with mean ``mean_lifetime``.  In steady state the
    expected population is ``arrival_rate * mean_lifetime``.
    """

    arrival_rate: float = 10.0
    mean_lifetime: float = 50.0
    horizon: float = 200.0
    sample_every: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.mean_lifetime <= 0:
            raise ConfigurationError(
                "arrival_rate and mean_lifetime must be positive")
        if self.horizon <= 0 or self.sample_every <= 0:
            raise ConfigurationError(
                "horizon and sample_every must be positive")

    @property
    def expected_population(self) -> float:
        return self.arrival_rate * self.mean_lifetime


@dataclass
class ChurnSample:
    """Fleet state at one sample instant."""

    time: float
    tenants: int
    servers_nonempty: int
    servers_opened_total: int
    utilization: float


@dataclass
class ChurnResult:
    """Timeline of one churn run."""

    algorithm: str
    config: ChurnConfig
    samples: List[ChurnSample] = field(default_factory=list)
    arrivals: int = 0
    departures: int = 0
    final_robust: bool = True
    #: Metrics snapshot of the run (None when not instrumented).
    metrics: Optional[Dict[str, object]] = None

    def steady_state(self, skip_fraction: float = 0.5
                     ) -> List[ChurnSample]:
        """Samples after the warm-up portion of the horizon."""
        cut = self.config.horizon * skip_fraction
        return [s for s in self.samples if s.time >= cut]

    @property
    def mean_steady_servers(self) -> float:
        steady = self.steady_state()
        if not steady:
            return 0.0
        return sum(s.servers_nonempty for s in steady) / len(steady)

    @property
    def mean_steady_utilization(self) -> float:
        steady = self.steady_state()
        if not steady:
            return 0.0
        return sum(s.utilization for s in steady) / len(steady)

    def to_table(self) -> Table:
        table = Table(
            title=f"Churn timeline — {self.algorithm} "
                  f"(rate {self.config.arrival_rate}/t, "
                  f"mean life {self.config.mean_lifetime}t)",
            columns=["time", "tenants", "servers", "opened_total",
                     "utilization"])
        for s in self.samples:
            table.add_row(round(s.time, 1), s.tenants, s.servers_nonempty,
                          s.servers_opened_total, round(s.utilization, 3))
        return table


def run_churn(factory: Callable[[], OnlinePlacementAlgorithm],
              distribution: LoadDistribution,
              config: Optional[ChurnConfig] = None,
              rng=None, obs=None) -> ChurnResult:
    """Drive one algorithm through a birth-death tenant workload.

    **Sampling tie-break.** A sample scheduled at time ``t`` reflects
    the fleet state *strictly before* any event at time ``t``: due
    samples are flushed before each event is applied, so an arrival or
    departure landing exactly on a sample instant is *not* visible in
    that sample (it shows up in the next one).  This half-open
    convention (samples cover ``[previous event, t)``) keeps timelines
    deterministic when event and sample times coincide.

    ``rng`` overrides the seeded generator (any object with the
    ``numpy.random.Generator`` ``exponential``/``integers`` surface) —
    useful for scripted, deterministic tests.  ``obs`` (a
    :class:`~repro.obs.MetricsRegistry`) instruments the run: fleet
    gauges track each sample and the final snapshot lands in
    ``ChurnResult.metrics``.
    """
    cfg = config if config is not None else ChurnConfig()
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    result = ChurnResult(algorithm=algorithm.name, config=cfg)

    def take_sample(at: float) -> None:
        sample = _sample(at, algorithm)
        result.samples.append(sample)
        if gated is not None:
            gated.gauge("churn.tenants").set(sample.tenants)
            gated.gauge("churn.servers").set(sample.servers_nonempty)
            gated.gauge("churn.utilization").set(sample.utilization)

    # Event heap: (time, seq, kind, tenant_id); seq breaks ties FIFO.
    events: List[tuple] = []
    seq = 0
    next_arrival = float(rng.exponential(1.0 / cfg.arrival_rate))
    heapq.heappush(events, (next_arrival, seq, "arrive", None))
    next_tenant_id = 0
    next_sample = cfg.sample_every
    alive: Dict[int, float] = {}

    while events:
        time, _seq, kind, tenant_id = heapq.heappop(events)
        if time > cfg.horizon:
            break
        # Flush all samples due at or before this event's timestamp
        # BEFORE applying the event: a sample at exactly `time` sees
        # the state strictly before the event (see docstring).
        while next_sample <= time:
            take_sample(next_sample)
            next_sample += cfg.sample_every
        if kind == "arrive":
            load = float(distribution.sample(rng, 1)[0])
            tenant = Tenant(next_tenant_id, load)
            algorithm.place(tenant)
            alive[next_tenant_id] = load
            result.arrivals += 1
            lifetime = float(rng.exponential(cfg.mean_lifetime))
            seq += 1
            heapq.heappush(events,
                           (time + lifetime, seq, "depart",
                            next_tenant_id))
            next_tenant_id += 1
            seq += 1
            gap = float(rng.exponential(1.0 / cfg.arrival_rate))
            heapq.heappush(events, (time + gap, seq, "arrive", None))
        else:
            if tenant_id in alive:
                algorithm.remove(tenant_id)
                del alive[tenant_id]
                result.departures += 1
    while next_sample <= cfg.horizon:
        take_sample(next_sample)
        next_sample += cfg.sample_every
    result.final_robust = audit(algorithm.placement).ok
    if gated is not None:
        result.metrics = gated.snapshot()
    return result


def _sample(time: float,
            algorithm: OnlinePlacementAlgorithm) -> ChurnSample:
    placement = algorithm.placement
    return ChurnSample(
        time=time,
        tenants=placement.num_tenants,
        servers_nonempty=placement.num_nonempty_servers,
        servers_opened_total=placement.num_servers,
        utilization=placement.utilization(),
    )
