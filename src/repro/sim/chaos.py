"""Chaos conformance harness: soak workload + deterministic fault schedule.

:func:`run_chaos_soak` drives the same seeded operation stream as
:func:`repro.sim.soak.run_soak` against a durable controller while a
*fault schedule* arms failpoints (:mod:`repro.faults`) at chosen
operations.  After every firing it asserts the **conformance
contract**:

1. every injected fault either surfaces as a typed
   :class:`~repro.errors.ReproError` subclass *or* leaves a placement
   that passes the full robustness audit — never a silent corruption;
2. recovery from any crash point is differential-identical to an
   uncrashed controller: the recovered placement equals either the
   pre-operation or the post-operation state (the operation is atomic
   at the WAL — committed entirely or not at all), modulo trailing
   empty servers an interrupted operation legitimately provisioned;
3. accounting closes: the registry's per-failpoint fire counts and the
   ``faults.*`` obs counters both match the schedule exactly.

Everything is reproducible from two values printed in every report:
the seed and the schedule string (``at_op:name=action[:k=v]*`` joined
by commas) — see ``docs/testing.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import faults
from ..algorithms.base import OnlinePlacementAlgorithm
from ..core.validation import audit
from ..errors import (ConfigurationError, FaultInjected, ReproError,
                      SimulatedCrash)
from .soak import SoakConfig, SoakResult, _SoakDriver

#: Failpoints the soak workload reaches on its own (the rest —
#: par/cluster seams — are exercised by dedicated conformance tests,
#: since a placement soak never forks workers or routes queries).
SOAK_FAILPOINTS: Dict[str, str] = {
    "algo.place": "raise",
    "algo.remove": "raise",
    "algo.update_load": "raise",
    "algo.feasibility": "raise",
    "store.wal.append": "raise",
    "store.wal.fsync": "raise",
    "store.wal.torn_tail": "crash",
    "store.wal.read": "corrupt",
    "store.checkpoint.write": "raise",
    "store.checkpoint.partial": "crash",
    "store.recover.replay": "raise",
}

#: Failpoints that only fire while a recovery is in progress; the
#: default schedule co-locates them with a crash event.
_RECOVERY_ONLY = ("store.wal.read", "store.recover.replay")

#: Retry ceiling for a single recovery (each armed recovery failpoint
#: consumes one attempt; anything beyond this is a real failure).
_MAX_RECOVERY_ATTEMPTS = 8


@dataclass(frozen=True)
class FaultEvent:
    """Arm one failpoint when the workload reaches ``at_op``.

    ``spec`` is the :func:`repro.faults.parse_spec` grammar
    (``name=action[:key=value]*``); the policy is armed with
    ``max_fires=1`` unless the spec says otherwise, and *stays armed*
    until it fires — an op mix that happens not to reach the seam this
    operation will reach it on a later one.
    """

    at_op: int
    spec: str

    def __post_init__(self) -> None:
        if self.at_op < 0:
            raise ConfigurationError(
                f"at_op must be >= 0, got {self.at_op}")
        faults.parse_spec(self.spec)  # validate eagerly

    @property
    def failpoint(self) -> str:
        return faults.parse_spec(self.spec)[0]

    @property
    def policy(self) -> faults.FailpointPolicy:
        return faults.parse_spec(self.spec)[1]

    def __str__(self) -> str:
        return f"{self.at_op}:{self.spec}"


def format_schedule(events) -> str:
    """Canonical schedule string (``parse_schedule`` round-trips it)."""
    return ",".join(str(event) for event in events)


def parse_schedule(text: str) -> Tuple[FaultEvent, ...]:
    """Parse ``at_op:name=action[:k=v]*`` entries separated by commas."""
    events: List[FaultEvent] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        at_op, sep, spec = chunk.partition(":")
        if not sep:
            raise ConfigurationError(
                f"bad schedule entry {chunk!r}: expected at_op:spec")
        try:
            op_index = int(at_op)
        except ValueError:
            raise ConfigurationError(
                f"bad schedule entry {chunk!r}: at_op {at_op!r} is not "
                f"an integer") from None
        events.append(FaultEvent(at_op=op_index, spec=spec))
    return tuple(sorted(events, key=lambda e: (e.at_op, e.spec)))


def default_schedule(operations: int, seed: int,
                     failpoints: Optional[Tuple[str, ...]] = None,
                     checkpoint_every: int = 25) -> Tuple[FaultEvent, ...]:
    """Spread one event per failpoint across the operation stream.

    Deterministic in ``(operations, seed, failpoints)``: the firing
    order is a seeded permutation, events land at evenly spaced
    operations, and recovery-only points ride on the first crash event
    (they can only fire while a recovery is running).  Checkpoint
    points are placed early enough that a ``checkpoint_every`` boundary
    still lies ahead of them.
    """
    names = list(failpoints if failpoints is not None
                 else sorted(SOAK_FAILPOINTS))
    for name in names:
        if name not in faults.CATALOG:
            raise ConfigurationError(
                f"unknown failpoint {name!r}; known: "
                f"{sorted(faults.CATALOG)}")
        if name not in SOAK_FAILPOINTS:
            raise ConfigurationError(
                f"failpoint {name!r} is not reachable from the soak "
                f"workload; schedulable: {sorted(SOAK_FAILPOINTS)}")
    if operations <= checkpoint_every and any(
            n.startswith("store.checkpoint.") for n in names):
        raise ConfigurationError(
            f"checkpoint failpoints need operations > checkpoint_every "
            f"({checkpoint_every}) so a checkpoint boundary exists, "
            f"got operations={operations}")
    recovery_only = [n for n in names if n in _RECOVERY_ONLY]
    names = [n for n in names if n not in _RECOVERY_ONLY]
    if recovery_only and not any(
            SOAK_FAILPOINTS[n] == "crash" for n in names):
        # Nothing crashes, so nothing recovers: give the recovery-only
        # points a crash to ride on.
        names.append("store.wal.torn_tail")
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=int(seed), spawn_key=(0xC4A05,)))
    order = [names[i] for i in rng.permutation(len(names))]
    events: List[FaultEvent] = []
    crash_op: Optional[int] = None
    slots = max(len(order), 1)
    for i, name in enumerate(order):
        at_op = (i + 1) * operations // (slots + 1)
        if name.startswith("store.checkpoint."):
            # Keep at least one checkpoint boundary ahead of the event.
            at_op = min(at_op,
                        max(0, operations - checkpoint_every - 1))
        at_op = min(at_op, operations - 1)
        events.append(FaultEvent(
            at_op=at_op, spec=f"{name}={SOAK_FAILPOINTS[name]}"))
        if SOAK_FAILPOINTS[name] == "crash" and crash_op is None:
            crash_op = at_op
    for name in recovery_only:
        events.append(FaultEvent(
            at_op=crash_op if crash_op is not None else 0,
            spec=f"{name}={SOAK_FAILPOINTS[name]}"))
    return tuple(sorted(events, key=lambda e: (e.at_op, e.spec)))


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of a chaos soak."""

    operations: int = 150
    seed: int = 0
    checkpoint_every: int = 25
    min_load: float = 0.02
    max_load: float = 0.9
    #: Explicit schedule; empty = :func:`default_schedule` over every
    #: soak-reachable failpoint.
    schedule: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ConfigurationError("operations must be >= 1")
        if self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        for event in self.schedule:
            if event.at_op >= self.operations:
                raise ConfigurationError(
                    f"schedule event {event} is at or beyond the last "
                    f"operation ({self.operations})")


@dataclass
class ChaosReport:
    """Outcome of one chaos soak, including the conformance verdict."""

    algorithm: str
    seed: int
    operations: int
    schedule: Tuple[FaultEvent, ...]
    #: Registry fire counts, per failpoint.
    fired: Dict[str, int] = field(default_factory=dict)
    #: Faults that surfaced as typed ReproError subclasses.
    typed_errors: int = 0
    #: Simulated controller crashes (recover-and-resume cycles).
    crashes: int = 0
    recoveries: int = 0
    #: Recovery attempts consumed by faults injected *into* recovery.
    recovery_retries: int = 0
    #: Conformance violations (empty == contract held).
    failures: List[str] = field(default_factory=list)
    #: Human-readable log of every surfaced fault.
    error_log: List[str] = field(default_factory=list)
    result: Optional[SoakResult] = None

    @property
    def ok(self) -> bool:
        return (not self.failures
                and (self.result is None or self.result.ok))

    @property
    def repro_line(self) -> str:
        """CLI invocation reproducing this exact run."""
        return (f"repro chaos --seed {self.seed} "
                f"--ops {self.operations} "
                f"--schedule '{format_schedule(self.schedule)}'")

    def __str__(self) -> str:
        status = "CONFORMANT" if self.ok else \
            f"{len(self.failures)} CONFORMANCE FAILURES"
        return (f"ChaosReport({self.algorithm}: "
                f"{sum(self.fired.values())} faults fired over "
                f"{self.operations} ops; {self.typed_errors} typed, "
                f"{self.crashes} crashes, {self.recoveries} recoveries;"
                f" {status}; reproduce: {self.repro_line})")


def _clone(placement):
    """Deep-copy a placement via the checkpoint codec (exact loads)."""
    from ..store.snapshot import Checkpoint
    servers = {}
    for server in placement.servers:
        servers[server.server_id] = (
            dict(server.tags),
            [(tid, idx, rep.load)
             for (tid, idx), rep in sorted(server.replicas.items())])
    return Checkpoint(
        gamma=placement.gamma, capacity=placement.capacity,
        wal_applied=0, next_server_id=placement._next_server_id,
        servers=servers).restore()


def _recover_retrying(store_dir, gated, report: ChaosReport):
    """Recover, retrying through faults injected into recovery itself.

    Each armed recovery failpoint fires once (typed) and disarms; a
    bounded number of retries therefore always converges unless the
    store is *actually* broken, which is a conformance failure.
    """
    from ..store import recover as store_recover
    last_error: Optional[ReproError] = None
    for attempt in range(1, _MAX_RECOVERY_ATTEMPTS + 1):
        try:
            recovered = store_recover(store_dir, obs=gated)
            report.recoveries += 1
            return recovered
        except ReproError as err:
            report.typed_errors += 1
            report.recovery_retries += 1
            report.error_log.append(
                f"recovery attempt {attempt}: "
                f"{type(err).__name__}: {err}")
            last_error = err
    report.failures.append(
        f"recovery did not converge within {_MAX_RECOVERY_ATTEMPTS} "
        f"attempts; last error: {last_error}")
    raise last_error


def run_chaos_soak(factory: Callable[[], OnlinePlacementAlgorithm],
                   store_dir,
                   config: Optional[ChaosConfig] = None,
                   obs=None,
                   segment_records: int = 64) -> ChaosReport:
    """Drive a durable soak while the fault schedule fires failpoints.

    The controller produced by ``factory`` runs the seeded operation
    stream with a :class:`~repro.store.DurableStore` under
    ``store_dir``.  Each schedule event arms its failpoint at its
    operation; the point stays armed until it fires.  Faults that
    surface as typed errors are contained in place (the placement must
    stay audit-clean); :class:`~repro.errors.SimulatedCrash` and any
    fault escaping a store seam kill the controller, which is then
    recovered from disk, differential-checked against the pre/post
    operation states, and resumed on a fresh
    :class:`~repro.algorithms.naive.RobustBestFit` via ``adopt`` (the
    crashed algorithm may not be adoptable).

    The resume algorithm choice means ``factory`` algorithms with
    non-reconstructible internal state (CUBEFIT) are supported — their
    run simply continues under bestfit after the first crash, exactly
    like :func:`repro.sim.soak.run_soak_with_crash`.
    """
    from ..algorithms.naive import RobustBestFit
    from ..obs import active
    from ..store import DurableStore, diff_placements

    cfg = config if config is not None else ChaosConfig()
    schedule = cfg.schedule or default_schedule(
        cfg.operations, cfg.seed, checkpoint_every=cfg.checkpoint_every)
    events_by_op: Dict[int, List[FaultEvent]] = {}
    for event in schedule:
        events_by_op.setdefault(event.at_op, []).append(event)

    gated = active(obs)
    registry = faults.FAILPOINTS
    baseline = registry.fired_counts()
    registry.attach_obs(gated)

    rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    if gated is not None:
        algorithm.attach_obs(gated)
    store = DurableStore(store_dir, segment_records=segment_records,
                         obs=gated)
    algorithm.attach_store(store)
    soak_cfg = SoakConfig(operations=cfg.operations, seed=cfg.seed,
                          min_load=cfg.min_load, max_load=cfg.max_load,
                          audit_each=True)
    result = SoakResult(algorithm=algorithm.name)
    report = ChaosReport(algorithm=algorithm.name, seed=cfg.seed,
                         operations=cfg.operations, schedule=schedule,
                         result=result)
    driver = _SoakDriver(algorithm, soak_cfg, rng, result, gated,
                         checkpoint_every=cfg.checkpoint_every)
    budget = driver.budget

    def reconcile_alive(driver, placement) -> List[int]:
        """Re-derive the workload's alive list from the authoritative
        placement after a fault interrupted an operation mid-flight
        (e.g. a remove that popped its victim but never committed).

        Also advances the driver's tenant-id counter past every placed
        tenant: a fault between ``_place`` succeeding and the wrapper
        returning leaves the tenant placed without the workload ever
        recording its id as used.
        """
        placed = set(placement.tenant_ids)
        alive = [t for t in driver.alive if t in placed]
        alive.extend(sorted(placed - set(alive)))
        if placed:
            driver.next_id = max(driver.next_id, max(placed) + 1)
        return alive

    try:
        op_index = 0
        while op_index < cfg.operations:
            for event in events_by_op.get(op_index, ()):
                registry.activate(event.failpoint, event.policy)
            armed = bool(registry.active_names())
            pre = _clone(driver.placement) if armed else None
            try:
                driver.step(op_index)
            except ReproError as err:
                # Any fault escaping a store seam means the controller
                # can no longer trust its log — treat it as a crash,
                # like SimulatedCrash itself.  So does any fault inside
                # the compound plan-and-apply ops (fail_and_recover,
                # repack): they mutate the placement move by move and
                # log only on success, so an interrupted plan leaves
                # torn in-memory state that only a restart from the
                # log can repair — wrapper ops (place/remove/resize)
                # are fault-transactional and contain in place instead.
                is_crash = isinstance(err, SimulatedCrash) or (
                    isinstance(err, FaultInjected)
                    and err.failpoint.startswith("store.")) or (
                    isinstance(err, FaultInjected)
                    and driver.last_op in ("fail_and_recover",
                                           "repack"))
                report.error_log.append(
                    f"op {op_index}: {type(err).__name__}: {err}")
                if is_crash:
                    # Controller death: recover from disk and check the
                    # crash differential — the recovered state must be
                    # the pre- or the post-operation placement (the WAL
                    # commits operations atomically), tolerating only
                    # trailing empty servers the interrupted operation
                    # provisioned.
                    report.crashes += 1
                    post = driver.placement
                    recovered = _recover_retrying(store_dir, gated,
                                                  report)
                    diffs_pre = diff_placements(
                        recovered.placement, pre, compare_tags=False,
                        ignore_provisioning=True) if pre is not None \
                        else ["no pre-op clone captured"]
                    if diffs_pre:
                        diffs_post = diff_placements(
                            recovered.placement, post,
                            compare_tags=False,
                            ignore_provisioning=True)
                        if diffs_post:
                            report.failures.append(
                                f"op {op_index}: recovered state "
                                f"matches neither pre nor post state; "
                                f"vs-pre: {diffs_pre[:3]}; vs-post: "
                                f"{diffs_post[:3]}")
                    resume = RobustBestFit(
                        gamma=recovered.gamma, failures=budget,
                        capacity=recovered.capacity)
                    if gated is not None:
                        resume.attach_obs(gated)
                    resume.adopt(recovered.placement)
                    store = DurableStore(
                        store_dir, segment_records=segment_records,
                        obs=gated)
                    resume.attach_store(store)
                    alive = reconcile_alive(driver, recovered.placement)
                    driver = _SoakDriver(
                        resume, soak_cfg, rng, result, gated,
                        checkpoint_every=cfg.checkpoint_every,
                        alive=alive, next_id=driver.next_id)
                else:
                    # Typed error contained in place: the operation
                    # rolled back, the placement must be audit-clean.
                    report.typed_errors += 1
                    driver.alive = reconcile_alive(driver,
                                                   driver.placement)
                check = audit(driver.placement, failures=budget)
                if not check.ok:
                    report.failures.append(
                        f"op {op_index}: placement failed the "
                        f"robustness audit after a "
                        f"{type(err).__name__} "
                        f"({len(check.violations)} violations)")
            op_index += 1
        driver.finish()
    finally:
        # Disarm before closing: close() fsyncs, and a still-armed
        # (never-fired) fsync failpoint must not detonate here.
        registry.clear()
        registry.attach_obs(None)
        store.close()

    # Accounting: every scheduled event fired exactly once, and the
    # obs counters agree with the registry.
    fired_now = registry.fired_counts()
    report.fired = {
        name: fired_now.get(name, 0) - baseline.get(name, 0)
        for name in sorted({e.failpoint for e in schedule})}
    expected: Dict[str, int] = {}
    for event in schedule:
        expected[event.failpoint] = expected.get(event.failpoint, 0) + 1
    for name, want in sorted(expected.items()):
        got = report.fired.get(name, 0)
        if got != want:
            report.failures.append(
                f"failpoint {name}: scheduled {want} firing(s), "
                f"observed {got}")
        if gated is not None:
            counted = gated.counter(f"faults.{name}").value
            if counted != got:
                report.failures.append(
                    f"failpoint {name}: obs counter faults.{name}="
                    f"{counted} disagrees with registry count {got}")
    if gated is not None:
        total = gated.counter("faults.fired").value
        if total != sum(fired_now.values()) - sum(baseline.values()):
            report.failures.append(
                f"faults.fired={total} disagrees with registry total "
                f"{sum(fired_now.values()) - sum(baseline.values())}")
    return report


@dataclass
class ServeChaosReport:
    """Outcome of a chaos drill against the live placement service.

    One cycle: daemon up → traffic → kill (graceful or -9) → recover
    and differential-check (the embedded :class:`DrillReport`) →
    *restart on the same store* → more traffic → graceful stop →
    final recovery and audit.  The service contract holds when every
    phase is clean.
    """

    mode: str
    seed: int
    drill: object = None  # DrillReport (typed loosely: lazy import)
    #: Tenants placed against the restarted (warm) daemon.
    resumed: Dict[int, List[int]] = field(default_factory=dict)
    final_tenants: int = 0
    final_audit_ok: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.failures
                and self.drill is not None and self.drill.ok)

    @property
    def repro_line(self) -> str:
        """One-liner reproducing this drill against a scratch store."""
        return ("python -c \"import tempfile, pathlib; "
                "from repro.sim.chaos import run_serve_chaos; "
                "t = pathlib.Path(tempfile.mkdtemp()); "
                f"r = run_serve_chaos(t / 'store', t / 'serve.sock', "
                f"mode='{self.mode}', seed={self.seed}); "
                "print(r); raise SystemExit(0 if r.ok else 1)\"")

    def __str__(self) -> str:
        status = "CONFORMANT" if self.ok else \
            f"{len(self.failures) + len(getattr(self.drill, 'failures', ()))} FAILURES"
        return (f"ServeChaosReport[{self.mode}] {status}: "
                f"{self.drill}; resumed {len(self.resumed)} tenants on "
                f"restart, final recovery {self.final_tenants} tenants,"
                f" audit {'clean' if self.final_audit_ok else 'VIOLATED'}"
                f"; reproduce: {self.repro_line}")


def run_serve_chaos(store_dir, socket_path, mode: str = "sigkill",
                    tenants: int = 120, resume_tenants: int = 20,
                    seed: int = 0,
                    fault_spec: Optional[str] = None,
                    checkpoint_interval: float = 0.1
                    ) -> ServeChaosReport:
    """Drill the placement *service* the way the soak drills the
    controller: kill a real daemon mid-traffic, recover, restart on
    the same store, and assert the durability contract end to end.

    ``fault_spec`` (the ``REPRO_FAULTS`` grammar) arms failpoints
    inside the daemon process — e.g.
    ``"serve.checkpoint_timer=raise"`` drills the timer seam while
    traffic flows.  The first kill follows ``mode``; the restart is
    always stopped gracefully so the final state is exact.
    """
    import signal as _signal
    from pathlib import Path

    from ..serve.client import ServeClient, wait_until_ready
    from ..serve.drill import (_drill_load, run_serve_drill,
                               spawn_daemon)
    from ..store import recover as store_recover

    store_dir = Path(store_dir)
    report = ServeChaosReport(mode=mode, seed=seed)
    report.drill = run_serve_drill(
        store_dir, socket_path, mode=mode, tenants=tenants,
        checkpoint_interval=checkpoint_interval,
        fault_spec=fault_spec)

    # Restart on the surviving store: the daemon must adopt the
    # recovered placement and keep serving.
    daemon = spawn_daemon(store_dir, socket_path,
                          checkpoint_interval=checkpoint_interval)
    try:
        wait_until_ready(socket_path, timeout=20.0)
        client = ServeClient(socket_path)
        try:
            for index in range(tenants + 1, tenants + 1 + resume_tenants):
                report.resumed[index] = client.place_retry(
                    index, _drill_load(index))
        finally:
            client.close()
        daemon.send_signal(_signal.SIGTERM)
        exit_code = daemon.wait(timeout=30.0)
        if exit_code != 0:
            report.failures.append(
                f"restarted daemon exited {exit_code} on SIGTERM, "
                f"expected 0")
    except ReproError as err:
        report.failures.append(f"restart phase failed: {err}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10.0)

    try:
        state = store_recover(store_dir)
    except ReproError as err:
        report.failures.append(f"final recovery failed: {err}")
        return report
    report.final_tenants = state.placement.num_tenants
    report.final_audit_ok = state.audit.ok
    if not state.audit.ok:
        report.failures.append(
            "final recovered placement failed the robustness audit")
    for tenant_id, servers in sorted(report.resumed.items()):
        by_index = state.placement.tenant_servers(tenant_id)
        got = [by_index[i] for i in sorted(by_index)]
        if got != servers:
            report.failures.append(
                f"resumed tenant {tenant_id} recovered on {got}, "
                f"was acked on {servers}")
    for tenant_id, servers in sorted(report.drill.acked.items()):
        by_index = state.placement.tenant_servers(tenant_id)
        got = [by_index[i] for i in sorted(by_index)]
        if got != servers:
            report.failures.append(
                f"pre-kill tenant {tenant_id} lost or moved across "
                f"restart: {got} != {servers}")
    return report


__all__ = [
    "ChaosConfig", "ChaosReport", "FaultEvent", "SOAK_FAILPOINTS",
    "ServeChaosReport", "default_schedule", "format_schedule",
    "parse_schedule", "run_chaos_soak", "run_serve_chaos",
]
