"""Benchmark E4 — Theorem 2: competitive-ratio upper bounds vs K.

Solves the paper's integer program exactly (branch-and-bound over
rationals) for gamma = 2 and gamma = 3 across a sweep of class counts.

Expected shape (paper): the bounds "approach 1.59 and 1.625
respectively for large values of K".  Our exact solver converges to
1.5983 (gamma = 2) and 1.6364 (gamma = 3) around K ≈ 211 — the gamma=3
value sits slightly above the paper's 1.625 because the worst bin
(m1 = m2 = 1 plus one class-8 replica) already weighs exactly 1.625 and
tiny replicas can still fill its last sliver of space.
"""

import pytest

from repro.sim.figures import theorem2


@pytest.fixture(scope="module")
def theorem2_result(scale):
    return theorem2(scale=scale)


def test_theorem2_benchmark(benchmark, scale):
    result = benchmark.pedantic(lambda: theorem2(scale=scale),
                                rounds=1, iterations=1)
    print()
    print(result)


class TestTheorem2Shape:
    def test_gamma2_converges_near_159(self, theorem2_result):
        rows = [r for r in theorem2_result.rows() if r.gamma == 2]
        final = rows[-1].ratio
        assert final == pytest.approx(1.598, abs=0.005)

    def test_gamma3_converges_near_1625(self, theorem2_result):
        rows = [r for r in theorem2_result.rows() if r.gamma == 3]
        final = rows[-1].ratio
        assert 1.62 <= final <= 1.65

    def test_bounds_monotonically_improve_with_k(self, theorem2_result):
        for gamma in (2, 3):
            ratios = [r.ratio for r in theorem2_result.rows()
                      if r.gamma == gamma]
            assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_gamma3_never_below_gamma2(self, theorem2_result):
        by_k = {}
        for r in theorem2_result.rows():
            by_k.setdefault(r.num_classes, {})[r.gamma] = r.ratio
        for k, ratios in by_k.items():
            if 2 in ratios and 3 in ratios:
                assert ratios[3] >= ratios[2] - 1e-12
