"""Unit tests for repacking and elastic load updates."""

import numpy as np
import pytest

from repro.algorithms.repack import Repacker
from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant
from repro.core.validation import audit
from repro.errors import ConfigurationError


def churned_cubefit(seed=3, steps=500, gamma=2):
    rng = np.random.default_rng(seed)
    algo = CubeFit(gamma=gamma, num_classes=10)
    alive, tid = [], 0
    for _ in range(steps):
        if alive and rng.random() < 0.45:
            algo.remove(alive.pop(int(rng.integers(len(alive)))))
        else:
            algo.place(Tenant(tid, float(rng.uniform(0.02, 0.6))))
            alive.append(tid)
            tid += 1
    return algo


class TestRepacker:
    def test_saves_servers_after_churn(self):
        algo = churned_cubefit()
        before = algo.placement.num_nonempty_servers
        plan = Repacker(algo.placement).repack()
        assert plan.servers_before == before
        assert plan.servers_after < before
        assert plan.servers_saved >= len(plan.drained_servers)

    def test_robustness_preserved(self):
        algo = churned_cubefit(seed=7)
        Repacker(algo.placement).repack()
        assert audit(algo.placement).ok

    def test_drained_servers_are_empty(self):
        algo = churned_cubefit(seed=11)
        plan = Repacker(algo.placement).repack()
        for sid in plan.drained_servers:
            assert len(algo.placement.server(sid)) == 0

    def test_replication_factor_preserved(self):
        algo = churned_cubefit(seed=13)
        tenants_before = set(algo.placement.tenant_ids)
        Repacker(algo.placement).repack()
        assert set(algo.placement.tenant_ids) == tenants_before
        for tid in tenants_before:
            homes = algo.placement.tenant_servers(tid)
            assert len(set(homes.values())) == 2

    def test_migration_budget_respected(self):
        algo = churned_cubefit(seed=17)
        plan = Repacker(algo.placement).repack(max_migrations=3)
        assert len(plan.migrations) <= 3

    def test_max_drains_respected(self):
        algo = churned_cubefit(seed=19)
        plan = Repacker(algo.placement).repack(max_drains=1)
        assert len(plan.drained_servers) <= 1

    def test_noop_on_tight_packing(self):
        """A fresh, dense packing has nothing worth draining."""
        algo = RFI(gamma=2)
        for tid in range(40):
            algo.place(Tenant(tid, 0.5))
        before = algo.placement.num_nonempty_servers
        plan = Repacker(algo.placement, failures=1).repack()
        assert audit(algo.placement, failures=1).ok
        assert plan.servers_after <= before

    def test_plan_str(self):
        algo = churned_cubefit(seed=23)
        plan = Repacker(algo.placement).repack(max_drains=1)
        assert "RepackPlan" in str(plan)


class TestElasticUpdates:
    def test_update_load_changes_load(self):
        algo = RFI(gamma=2)
        algo.place(Tenant(0, 0.3))
        homes = algo.update_load(0, 0.6)
        assert algo.placement.tenant_load(0) == pytest.approx(0.6)
        assert len(homes) == 2
        assert audit(algo.placement, failures=1).ok

    def test_update_load_shrink(self):
        algo = CubeFit(gamma=2, num_classes=10)
        algo.place(Tenant(0, 0.8))
        algo.update_load(0, 0.1)
        assert algo.placement.tenant_load(0) == pytest.approx(0.1)
        assert audit(algo.placement).ok

    def test_unknown_tenant_rejected(self):
        algo = RFI(gamma=2)
        with pytest.raises(ConfigurationError):
            algo.update_load(5, 0.2)

    def test_invalid_load_rejected(self):
        algo = RFI(gamma=2)
        algo.place(Tenant(0, 0.3))
        with pytest.raises(ConfigurationError):
            algo.update_load(0, 0.0)

    def test_random_elastic_churn_stays_robust(self):
        rng = np.random.default_rng(29)
        algo = CubeFit(gamma=3, num_classes=5)
        for tid in range(40):
            algo.place(Tenant(tid, float(rng.uniform(0.05, 0.9))))
        for _ in range(60):
            tid = int(rng.integers(0, 40))
            algo.update_load(tid, float(rng.uniform(0.05, 0.9)))
        assert audit(algo.placement).ok
        assert algo.placement.num_tenants == 40

    def test_cubefit_same_class_update_often_recycles(self):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.place(Tenant(0, 0.9))
        servers = algo.placement.num_servers
        algo.update_load(0, 0.95)  # same class 1
        assert algo.placement.num_servers == servers
        assert algo.stats.get("recycled_slots", 0) >= 1
