#!/usr/bin/env python
"""Trace workflows: record a run, replay it, recover from failures.

Run with::

    python examples/trace_replay.py

Demonstrates the operational toolchain around the placement core:

1. generate a workload and save it as a trace file,
2. consolidate it, snapshot the placement to disk,
3. reload both and verify the reconstruction bit-for-bit,
4. replay the same trace against a different algorithm (paired
   comparison on identical arrivals),
5. fail servers and re-replicate the lost replicas onto survivors,
   restoring the replication factor without breaking robustness.
"""

import tempfile
from pathlib import Path

from repro import CubeFit, RFI, RecoveryPlanner, audit
from repro.workloads import (UniformLoad, generate_sequence, load_placement,
                             load_trace, save_placement, save_trace)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "workload.json"
    placement_path = workdir / "cubefit-placement.json"

    # 1. Record the workload.
    sequence = generate_sequence(UniformLoad(0.5), n=500, seed=7)
    save_trace(sequence, trace_path)
    print(f"saved {len(sequence)} tenants -> {trace_path}")

    # 2. Consolidate and snapshot.
    cubefit = CubeFit(gamma=2, num_classes=10)
    cubefit.consolidate(sequence)
    save_placement(cubefit.placement, placement_path,
                   algorithm="cubefit")
    print(f"CubeFit used {cubefit.num_servers} servers -> "
          f"{placement_path}")

    # 3. Reload and verify.
    replayed = load_trace(trace_path)
    restored = load_placement(placement_path, replayed)
    assert restored.snapshot() == cubefit.placement.snapshot()
    audit(restored).raise_if_violated()
    print("reload check: snapshot identical, robustness audit OK")

    # 4. Paired comparison on the identical trace.
    rfi = RFI(gamma=2)
    rfi.consolidate(replayed)
    print(f"replayed against RFI: {rfi.num_servers} servers "
          f"(CubeFit saved "
          f"{(rfi.num_servers - cubefit.num_servers) / cubefit.num_servers:.1%})")

    # 5. Fail three servers and re-replicate.
    victims = sorted(s.server_id for s in restored if len(s) > 0)[:3]
    lost = sum(len(restored.server(v)) for v in victims)
    plan = RecoveryPlanner(restored).recover(victims)
    print(f"failed servers {victims}: {lost} replicas lost, "
          f"{plan.replicas_relocated} relocated, "
          f"{plan.servers_opened} new servers opened")
    audit(restored).raise_if_violated()
    for tid in restored.tenant_ids:
        assert len(restored.tenant_servers(tid)) == 2
    print("post-recovery: replication factor restored, audit OK")


if __name__ == "__main__":
    main()
