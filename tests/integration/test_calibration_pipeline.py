"""Integration: full Section IV calibration against the simulated cluster."""

import pytest

from repro.cluster.calibration import (calibrate_load_model,
                                       find_boundary_clients, measure_p99)
from repro.cluster.experiment import ClusterConfig


FAST = ClusterConfig(warmup=10.0, measure=30.0)


class TestMeasurement:
    def test_latency_monotone_in_clients(self):
        p_low = measure_p99(1, 10, FAST)
        p_high = measure_p99(1, 70, FAST)
        assert p_high > p_low

    def test_more_tenants_same_clients_costlier(self):
        few = measure_p99(2, 40, FAST)
        many = measure_p99(30, 40, FAST)
        assert many > few * 0.9  # beta overhead pushes latency up


class TestBoundary:
    def test_boundary_bracketing(self):
        point = find_boundary_clients(1, FAST)
        assert 30 <= point.clients <= 70
        # Just inside meets, just outside violates (up to noise, the
        # search guarantees the measured values straddle the SLA).
        assert measure_p99(1, point.clients, FAST) <= FAST.sla_seconds


class TestFullCalibration:
    def test_recovers_paperlike_model(self):
        result = calibrate_load_model(tenant_counts=(1, 6, 12),
                                      config=FAST)
        model = result.model
        # The simulated hardware was tuned so that C ~ 52 (paper).
        assert 42 <= result.max_clients_single_tenant <= 62
        assert 0.01 <= model.delta <= 0.03
        assert 0.0 <= model.beta <= 0.03
        assert len(result.boundary) == 3
