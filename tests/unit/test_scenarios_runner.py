"""Unit tests for scale profiles and the consolidation runner."""

import pytest

from repro.core.cubefit import CubeFit
from repro.algorithms.rfi import RFI
from repro.sim.runner import ComparisonResult, compare, run_once
from repro.sim.scenarios import (DEFAULT_SCALE, FULL_SCALE, FULL_SCALE_ENV,
                                 current_scale, figure6_distributions,
                                 table1_distributions)
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence
from repro.errors import ConfigurationError


class TestScaleProfiles:
    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv(FULL_SCALE_ENV, raising=False)
        assert current_scale() is DEFAULT_SCALE

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv(FULL_SCALE_ENV, "1")
        assert current_scale() is FULL_SCALE

    def test_full_scale_matches_paper(self):
        assert FULL_SCALE.sim_tenants == 50_000
        assert FULL_SCALE.sim_runs == 10
        assert FULL_SCALE.cluster_servers == 69
        assert FULL_SCALE.cluster_warmup == 300.0
        assert FULL_SCALE.cluster_measure == 300.0

    def test_tenant_scale(self):
        assert FULL_SCALE.tenant_scale == pytest.approx(1.0)

    def test_figure6_distributions(self):
        dists = figure6_distributions()
        names = [d.name for d in dists]
        assert "uniform(0,0.2]" in names
        assert "uniform(0,1]" in names
        assert any("zipf(3" in n for n in names)
        assert len(dists) == 8

    def test_table1_distributions(self):
        dists = table1_distributions()
        assert set(dists) == {"Uniform", "Zipfian"}


class TestRunOnce:
    def test_captures_stats(self):
        seq = generate_sequence(UniformLoad(0.4), 100, seed=0)
        stats = run_once(lambda: CubeFit(gamma=2, num_classes=10), seq,
                         verify=True)
        assert stats.algorithm == "cubefit"
        assert stats.servers > 0
        assert stats.robust
        assert stats.tenants == 100
        assert 0.0 < stats.utilization <= 1.0
        assert stats.placement_seconds >= 0.0


class TestCompare:
    def make(self, runs=2, n=150):
        factories = {
            "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
            "rfi": lambda: RFI(gamma=2),
        }
        return compare(factories, UniformLoad(0.3), n_tenants=n,
                       runs=runs, base_seed=0)

    def test_paired_runs(self):
        result = self.make()
        assert result.runs == 2
        assert len(result.servers["cubefit"]) == 2
        assert len(result.servers["rfi"]) == 2

    def test_savings_metric(self):
        result = self.make()
        savings = result.savings_percent("rfi", "cubefit")
        manual = (result.mean_servers("rfi")
                  - result.mean_servers("cubefit")) \
            / result.mean_servers("cubefit") * 100
        assert savings == pytest.approx(manual)

    def test_savings_ci(self):
        result = self.make(runs=3)
        ci = result.savings_percent_ci("rfi", "cubefit")
        assert ci.n == 3
        assert ci.half_width >= 0

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            compare({}, UniformLoad(0.3), 10, 1)
        with pytest.raises(ConfigurationError):
            compare({"x": lambda: CubeFit(gamma=2)}, UniformLoad(0.3),
                    10, 0)
