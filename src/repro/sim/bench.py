"""Canonical placement-speed bench scenarios and baseline checking.

One place defines the benched algorithm lineup (:data:`FACTORIES`), the
timing protocol (:func:`time_scenario`), the feasibility fast-path
profile (:func:`feasibility_profile`) and the baseline tolerance check
(:func:`check_against_baseline`).  Both front-ends —
``tools/run_bench.py`` (writes ``BENCH_placement.json``) and
``benchmarks/bench_placement_speed.py`` (pytest-benchmark) — import
from here so the committed baseline and the pytest bench can never
drift apart on what "the cubefit scenario" means.

Timings are machine-dependent; ``servers`` and ``utilization`` are
deterministic and meaningful to diff, as are the
``feasibility.screened`` / ``feasibility.exact`` counters — the
screened fast path must answer the same placements with strictly fewer
exact top-``f`` evaluations, and the recorded ratio is the proof.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms.base import OnlinePlacementAlgorithm
from ..algorithms.naive import (RobustBestFit, RobustFirstFit,
                                RobustNextFit)
from ..algorithms.rfi import RFI
from ..core.cubefit import CubeFit
from ..errors import ConfigurationError
from ..obs import MetricsRegistry
from ..par import pmap
from ..workloads.distributions import UniformLoad
from ..workloads.sequences import generate_sequence

BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 2

#: The benched lineup.  Keys are scenario names in the baseline file.
FACTORIES: Dict[str, Callable[[], OnlinePlacementAlgorithm]] = {
    "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
    "rfi": lambda: RFI(gamma=2),
    "bestfit": lambda: RobustBestFit(gamma=2),
    "firstfit": lambda: RobustFirstFit(gamma=2),
    "nextfit": lambda: RobustNextFit(gamma=2),
}

#: Tenant counts timed by default: the historical 2k scenario, a 10k
#: scenario that stresses the screened fast path at fleet scale, and a
#: 100k scenario where the array core's batch screening and candidate
#: vectors carry tens of thousands of servers per query.
DEFAULT_SCALES: Sequence[int] = (2000, 10000, 100000)
DEFAULT_ROUNDS = 3
BENCH_SEED = 0
BENCH_DISTRIBUTION_MAX = 0.6

#: Sharded-fleet scenarios timed by default: ``(tenants, shards)``.
#: One entry — the 100k stream over 8 bestfit shards — demonstrates
#: the fleet claim: aggregate throughput above the best
#: single-controller scenario at any scale.
DEFAULT_FLEET_SCALES: Sequence[tuple] = ((100000, 8),)


def bench_sequence(n_tenants: int):
    """The bench workload: ``Uniform(0, 0.6]`` loads, fixed seed."""
    return generate_sequence(UniformLoad(BENCH_DISTRIBUTION_MAX),
                             n_tenants, seed=BENCH_SEED)


def time_scenario(factory: Callable[[], OnlinePlacementAlgorithm],
                  sequence, rounds: int = DEFAULT_ROUNDS) -> Dict:
    """Consolidate ``sequence`` ``rounds`` times on fresh instances.

    ``tenants_per_second`` uses the *fastest* round: consolidation is
    deterministic compute, so the minimum is the least-noise estimate
    on a shared machine, while ``seconds_mean`` keeps the noisy average
    for context.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    seconds: List[float] = []
    algo = None
    for _ in range(rounds):
        algo = factory()
        start = time.perf_counter()
        algo.consolidate(sequence)
        seconds.append(time.perf_counter() - start)
    mean = sum(seconds) / len(seconds)
    return {
        "seconds_mean": round(mean, 6),
        "seconds_min": round(min(seconds), 6),
        "tenants_per_second": round(len(sequence) / max(min(seconds),
                                                        1e-9)),
        "servers": algo.placement.num_servers,
        "utilization": round(algo.placement.utilization(), 4),
    }


def feasibility_profile(factory: Callable[[], OnlinePlacementAlgorithm],
                        sequence) -> Dict:
    """Screened-vs-exact feasibility counters for one consolidation.

    Returns ``{"screened": n, "exact": m, "screened_fraction": f}`` —
    the fraction of single-placement feasibility decisions the bound
    screen answered without an exact top-``f`` evaluation.
    """
    registry = MetricsRegistry()
    algo = factory()
    algo.attach_obs(registry)
    algo.consolidate(sequence)
    snapshot = registry.snapshot()
    screened = int(snapshot.get("feasibility.screened",
                                {"value": 0})["value"])
    exact = int(snapshot.get("feasibility.exact",
                             {"value": 0})["value"])
    checks = screened + exact
    return {
        "screened": screened,
        "exact": exact,
        "screened_fraction": round(screened / checks, 4) if checks
        else 0.0,
    }


def fleet_scenario(n_tenants: int, shards: int,
                   rounds: int = DEFAULT_ROUNDS,
                   policy: str = "hash") -> Dict:
    """Time the sharded-fleet pipeline on the bench workload.

    The bench stream is routed once through a deterministic
    :class:`~repro.fleet.router.PlacementRouter`, then every shard's
    sub-stream is consolidated on its own ``RobustBestFit`` — in
    memory, like every other bench scenario (the durable fleet with
    WAL + crash drills is :func:`repro.fleet.soak.run_fleet_soak`).
    Two rates come out:

    * ``tenants_per_second`` — the full stream over the summed shard
      time, i.e. what one core executing shards back to back sustains;
    * ``aggregate_tenants_per_second`` — the sum of per-shard rates,
      i.e. what the fleet sustains with one core per shard (shards
      share nothing, so this is linear scale-out, and it is the number
      the "sharding beats one big controller" claim is about).

    ``servers`` and ``utilization`` are deterministic, like every
    other scenario.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    from ..fleet.router import PlacementRouter

    sequence = bench_sequence(n_tenants)
    router = PlacementRouter(shards, policy=policy, seed=BENCH_SEED)
    routed = router.route_stream(list(sequence))
    assignments: Dict[int, List] = {s: [] for s in range(shards)}
    for shard, tenant in routed:
        assignments[shard].append(tenant)

    best_wall = None
    best_aggregate = 0.0
    algos = None
    for _ in range(rounds):
        shard_seconds: List[float] = []
        round_algos = []
        for shard in range(shards):
            algo = RobustBestFit(gamma=2)
            start = time.perf_counter()
            for tenant in assignments[shard]:
                algo.place(tenant)
            shard_seconds.append(time.perf_counter() - start)
            round_algos.append(algo)
        wall = sum(shard_seconds)
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_aggregate = sum(
                len(assignments[shard]) / max(seconds, 1e-9)
                for shard, seconds in enumerate(shard_seconds)
                if assignments[shard])
            algos = round_algos
    total_load = sum(a.placement.total_load() for a in algos)
    nonempty = sum(a.placement.num_nonempty_servers for a in algos)
    return {
        "shards": shards,
        "policy": policy,
        "seconds_min": round(best_wall, 6),
        "tenants_per_second": round(n_tenants / max(best_wall, 1e-9)),
        "aggregate_tenants_per_second": round(best_aggregate),
        "servers": sum(a.placement.num_servers for a in algos),
        "utilization": round(total_load / nonempty, 4) if nonempty
        else 0.0,
    }


def run_bench(scales: Sequence[int] = DEFAULT_SCALES,
              rounds: int = DEFAULT_ROUNDS,
              jobs: int = 1,
              names: Optional[Sequence[str]] = None,
              fleet_scales: Sequence[tuple] = DEFAULT_FLEET_SCALES,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Time every scenario at every scale; return the v2 payload.

    ``jobs > 1`` times the scenarios of each scale on a forked worker
    pool — each worker times in its own process, so wall-clock drops
    while the deterministic fields (servers, utilization, feasibility
    counters) are unaffected.  On a loaded or single-core machine keep
    ``jobs=1`` for the least-noise timings.

    The payload keeps the v1 keys (``n_tenants`` + ``scenarios``)
    aliased to the *first* scale so existing diff tooling keeps
    working, and adds per-scale sections plus the feasibility
    screened/exact ratios.
    """
    if not scales:
        raise ConfigurationError("no scales to bench")
    chosen = sorted(names) if names else sorted(FACTORIES)
    unknown = set(chosen) - set(FACTORIES)
    if unknown:
        raise ConfigurationError(
            f"unknown bench scenarios: {sorted(unknown)}")
    say = progress if progress is not None else (lambda line: None)
    per_scale: Dict[str, Dict] = {}
    feasibility: Dict[str, Dict] = {}
    for n_tenants in scales:
        sequence = bench_sequence(n_tenants)

        def one_scenario(name: str, _obs) -> Dict:
            timing = time_scenario(FACTORIES[name], sequence, rounds)
            timing["feasibility"] = feasibility_profile(
                FACTORIES[name], sequence)
            return timing

        timed = pmap(one_scenario, chosen, jobs=jobs)
        scale_key = str(n_tenants)
        per_scale[scale_key] = {}
        feasibility[scale_key] = {}
        for name, timing in zip(chosen, timed):
            feasibility[scale_key][name] = timing.pop("feasibility")
            per_scale[scale_key][name] = timing
            fp = feasibility[scale_key][name]
            say(f"[{n_tenants}] {name:>9}: "
                f"{timing['tenants_per_second']:>8,} tenants/s  "
                f"{timing['servers']:>5} servers  "
                f"util {timing['utilization']:.4f}  "
                f"screened {fp['screened_fraction']:.1%}")
    fleet: Dict[str, Dict] = {}
    for n_tenants, shards in fleet_scales:
        timing = fleet_scenario(n_tenants, shards, rounds=rounds)
        fleet[f"{n_tenants}x{shards}"] = timing
        say(f"[{n_tenants}] fleet x{shards}: "
            f"{timing['tenants_per_second']:>8,} tenants/s wall, "
            f"{timing['aggregate_tenants_per_second']:>8,} aggregate  "
            f"{timing['servers']:>5} servers  "
            f"util {timing['utilization']:.4f}")
    first_key = str(scales[0])
    payload = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "rounds": rounds,
        "seed": BENCH_SEED,
        "distribution": f"uniform(0,{BENCH_DISTRIBUTION_MAX}]",
        "n_tenants": scales[0],
        "scenarios": per_scale[first_key],
        "scales": per_scale,
        "feasibility": feasibility,
    }
    if fleet:
        payload["fleet"] = fleet
    return payload


def check_against_baseline(payload: Dict, baseline: Dict,
                           slowdown_tolerance: float = 3.0
                           ) -> List[str]:
    """Compare a fresh bench run against a committed baseline.

    Returns a list of problems (empty = pass):

    * packing quality — ``servers`` and ``utilization`` — must match
      the baseline *exactly* (consolidation is deterministic; any drift
      is a behaviour change, not noise);
    * throughput must not be more than ``slowdown_tolerance`` times
      slower than the baseline (a deliberately loose floor: timings on
      shared CI boxes are noisy, and the check is meant to catch a
      10x-regression bug, not a 10% wobble).

    Scales and scenarios present in only one of the two payloads are
    skipped — a baseline predating a new scale stays usable.
    """
    if slowdown_tolerance <= 1.0:
        raise ConfigurationError(
            f"slowdown_tolerance must be > 1, got {slowdown_tolerance}")
    problems: List[str] = []
    base_scales = baseline.get("scales") \
        or {str(baseline.get("n_tenants")): baseline.get("scenarios", {})}
    new_scales = payload.get("scales") \
        or {str(payload.get("n_tenants")): payload.get("scenarios", {})}
    for scale_key, base_scenarios in sorted(base_scales.items()):
        new_scenarios = new_scales.get(scale_key)
        if new_scenarios is None:
            continue
        for name, base in sorted(base_scenarios.items()):
            fresh = new_scenarios.get(name)
            if fresh is None:
                continue
            where = f"[{scale_key}] {name}"
            if fresh["servers"] != base["servers"]:
                problems.append(
                    f"{where}: servers {fresh['servers']} != baseline "
                    f"{base['servers']}")
            if abs(fresh["utilization"] - base["utilization"]) > 5e-5:
                problems.append(
                    f"{where}: utilization {fresh['utilization']} != "
                    f"baseline {base['utilization']}")
            floor = base["tenants_per_second"] / slowdown_tolerance
            if fresh["tenants_per_second"] < floor:
                problems.append(
                    f"{where}: {fresh['tenants_per_second']} tenants/s "
                    f"is more than {slowdown_tolerance:g}x slower than "
                    f"baseline {base['tenants_per_second']}")
    # Fleet scenarios follow the same rules: packing exact, aggregate
    # throughput within the slowdown floor.  A baseline predating the
    # fleet section (or a run that skipped it) is silently compatible.
    for key, base in sorted(baseline.get("fleet", {}).items()):
        fresh = payload.get("fleet", {}).get(key)
        if fresh is None:
            continue
        where = f"[fleet {key}]"
        if fresh["servers"] != base["servers"]:
            problems.append(
                f"{where}: servers {fresh['servers']} != baseline "
                f"{base['servers']}")
        if abs(fresh["utilization"] - base["utilization"]) > 5e-5:
            problems.append(
                f"{where}: utilization {fresh['utilization']} != "
                f"baseline {base['utilization']}")
        floor = base["aggregate_tenants_per_second"] / slowdown_tolerance
        if fresh["aggregate_tenants_per_second"] < floor:
            problems.append(
                f"{where}: {fresh['aggregate_tenants_per_second']} "
                f"aggregate tenants/s is more than "
                f"{slowdown_tolerance:g}x slower than baseline "
                f"{base['aggregate_tenants_per_second']}")
    return problems
