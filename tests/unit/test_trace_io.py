"""Unit tests for trace/placement serialization."""

import pytest

from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant, TenantSequence, make_tenants
from repro.core.validation import audit
from repro.workloads.trace_io import (load_placement, load_trace,
                                      save_placement, save_trace)
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence
from repro.errors import ConfigurationError


@pytest.fixture
def sequence():
    return generate_sequence(UniformLoad(0.5), 40, seed=3)


class TestTraceRoundtrip:
    def test_roundtrip_preserves_sequence(self, sequence, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(sequence, path)
        loaded = load_trace(path)
        assert loaded.loads == sequence.loads
        assert [t.tenant_id for t in loaded] == \
            [t.tenant_id for t in sequence]
        assert loaded.seed == sequence.seed
        assert loaded.description == sequence.description

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-trace", "version": 99}')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope.json")


class TestPlacementRoundtrip:
    def test_roundtrip_preserves_assignment(self, sequence, tmp_path):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(sequence)
        trace_path = tmp_path / "trace.json"
        placement_path = tmp_path / "placement.json"
        save_trace(sequence, trace_path)
        save_placement(algo.placement, placement_path,
                       algorithm="cubefit")
        restored = load_placement(placement_path, load_trace(trace_path))
        assert restored.snapshot() == algo.placement.snapshot()
        assert restored.gamma == 2
        # The reconstructed placement carries full shared-load state.
        assert audit(restored).ok == audit(algo.placement).ok

    def test_placement_with_unknown_tenant_rejected(self, sequence,
                                                    tmp_path):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(sequence)
        placement_path = tmp_path / "placement.json"
        save_placement(algo.placement, placement_path)
        truncated = TenantSequence(tenants=make_tenants([0.5]))
        with pytest.raises(ConfigurationError):
            load_placement(placement_path, truncated)

    def test_replica_index_validation(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            '{"format": "repro-placement", "version": 1, "gamma": 2,'
            ' "algorithm": "x", "servers": {"0": [[0, 0]], '
            '"1": [[0, 0]]}}')
        seq = TenantSequence(tenants=make_tenants([0.4]))
        with pytest.raises(Exception):
            load_placement(path, seq)


class TestDuplicateTenantIds:
    """A duplicated tenant id would let every id-keyed consumer silently
    pick one of the conflicting loads; both loaders must refuse."""

    def _write_trace(self, path, entries):
        import json
        path.write_text(json.dumps({
            "format": "repro-trace", "version": 1,
            "description": "", "seed": 0,
            "tenants": entries}))

    def test_load_trace_rejects_duplicate_ids(self, tmp_path):
        path = tmp_path / "dup.json"
        self._write_trace(path, [{"id": 0, "load": 0.2},
                                 {"id": 1, "load": 0.3},
                                 {"id": 0, "load": 0.4}])
        with pytest.raises(ConfigurationError, match="duplicate"):
            load_trace(path)

    def test_load_trace_error_names_offending_ids(self, tmp_path):
        path = tmp_path / "dup.json"
        self._write_trace(path, [{"id": 5, "load": 0.2},
                                 {"id": 5, "load": 0.3},
                                 {"id": 7, "load": 0.1},
                                 {"id": 7, "load": 0.1}])
        with pytest.raises(ConfigurationError, match=r"\[5, 7\]"):
            load_trace(path)

    def test_load_placement_rejects_duplicate_trace_ids(self, tmp_path):
        algo = CubeFit(gamma=2, num_classes=5)
        clean = TenantSequence(tenants=make_tenants([0.3, 0.4]))
        algo.consolidate(clean)
        placement_path = tmp_path / "placement.json"
        save_placement(algo.placement, placement_path)
        duped = TenantSequence(
            tenants=[Tenant(0, 0.3), Tenant(1, 0.4), Tenant(0, 0.9)])
        with pytest.raises(ConfigurationError, match="duplicate"):
            load_placement(placement_path, duped)

    def test_unique_ids_still_load(self, tmp_path):
        path = tmp_path / "ok.json"
        self._write_trace(path, [{"id": 0, "load": 0.2},
                                 {"id": 1, "load": 0.3}])
        assert load_trace(path).loads == [0.2, 0.3]
