"""Unit tests for closed-loop clients, maintenance tasks, datastore."""

import numpy as np
import pytest

from repro.cluster.background import MaintenanceTask
from repro.cluster.client import TenantClient
from repro.cluster.datastore import DataStore
from repro.cluster.engine import Simulator
from repro.cluster.latency import LatencyRecorder
from repro.cluster.machine import Machine
from repro.cluster.routing import ReplicaRouter
from repro.errors import SimulationError
from repro.workloads.tpch import QueryStream


def build_single_machine():
    sim = Simulator()
    machines = {0: Machine(sim, 0, cores=4)}
    router = ReplicaRouter(sim, machines, {0: [0]},
                           DataStore(warm_after=0))
    recorder = LatencyRecorder()
    return sim, machines, router, recorder


class TestTenantClient:
    def test_closed_loop_issues_queries(self):
        sim, machines, router, recorder = build_single_machine()
        rng = np.random.default_rng(0)
        client = TenantClient(sim, 0, tenant_id=0, router=router,
                              stream=QueryStream(rng), recorder=recorder,
                              rng=rng, think_mean=0.1)
        client.start(initial_delay=0.0)
        sim.run_until(30.0)
        assert client.queries_issued > 10
        assert recorder.count > 10

    def test_stop_halts_issuing(self):
        sim, machines, router, recorder = build_single_machine()
        rng = np.random.default_rng(0)
        client = TenantClient(sim, 0, tenant_id=0, router=router,
                              stream=QueryStream(rng), recorder=recorder,
                              rng=rng, think_mean=0.1)
        client.start(initial_delay=0.0)
        sim.run_until(5.0)
        client.stop()
        issued = client.queries_issued
        sim.run_until(30.0)
        assert client.queries_issued == issued

    def test_negative_think_rejected(self):
        sim, machines, router, recorder = build_single_machine()
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            TenantClient(sim, 0, 0, router, QueryStream(rng), recorder,
                         rng, think_mean=-1.0)

    def test_dropped_recorded_when_unavailable(self):
        sim, machines, router, recorder = build_single_machine()
        rng = np.random.default_rng(0)
        client = TenantClient(sim, 0, tenant_id=0, router=router,
                              stream=QueryStream(rng), recorder=recorder,
                              rng=rng, think_mean=0.5)
        router.fail_machine(0)
        client.start(initial_delay=0.0)
        sim.run_until(5.0)
        assert recorder.dropped > 0


class TestMaintenanceTask:
    def test_recurring_runs(self):
        sim = Simulator()
        machine = Machine(sim, 0, cores=4)
        rng = np.random.default_rng(0)
        task = MaintenanceTask(sim, machine, tenant_id=0, rng=rng,
                               interval=1.0, demand=0.1)
        task.start()
        sim.run_until(20.0)
        assert 10 <= task.runs <= 40

    def test_alive_homes_divisor_slows_cycle(self):
        sim = Simulator()
        machine = Machine(sim, 0, cores=4)
        rng = np.random.default_rng(0)
        slow = MaintenanceTask(sim, machine, 0, rng, interval=1.0,
                               demand=0.01, alive_homes=lambda: 3)
        fast = MaintenanceTask(sim, machine, 1,
                               np.random.default_rng(0), interval=1.0,
                               demand=0.01, alive_homes=lambda: 1)
        slow.start()
        fast.start()
        sim.run_until(60.0)
        assert fast.runs > 1.5 * slow.runs

    def test_stops_on_machine_failure(self):
        sim = Simulator()
        machine = Machine(sim, 0, cores=4)
        rng = np.random.default_rng(0)
        task = MaintenanceTask(sim, machine, 0, rng, interval=0.5,
                               demand=0.1)
        task.start()
        sim.run_until(5.0)
        machine.fail()
        runs = task.runs
        sim.run_until(20.0)
        assert task.runs <= runs + 1  # at most one already-scheduled run

    def test_invalid_parameters(self):
        sim = Simulator()
        machine = Machine(sim, 0)
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            MaintenanceTask(sim, machine, 0, rng, interval=0.0)
        with pytest.raises(SimulationError):
            MaintenanceTask(sim, machine, 0, rng, demand=0.0)


class TestDataStore:
    def test_cold_then_warm(self):
        store = DataStore(cold_penalty=2.0, warm_after=2)
        assert store.demand_multiplier(0, 7) == 2.0
        assert store.demand_multiplier(0, 7) == 2.0
        assert store.demand_multiplier(0, 7) == 1.0
        assert store.is_warm(0, 7)

    def test_warmth_is_per_machine(self):
        store = DataStore(cold_penalty=2.0, warm_after=1)
        store.demand_multiplier(0, 7)
        assert not store.is_warm(1, 7)

    def test_evict_machine(self):
        store = DataStore(cold_penalty=2.0, warm_after=1)
        store.demand_multiplier(0, 7)
        store.demand_multiplier(0, 7)
        assert store.is_warm(0, 7)
        store.evict_machine(0)
        assert not store.is_warm(0, 7)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            DataStore(cold_penalty=0.5)
        with pytest.raises(SimulationError):
            DataStore(warm_after=-1)
