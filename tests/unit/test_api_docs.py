"""Guards for the generated API reference."""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

import gen_api_docs  # noqa: E402


class TestGenerator:
    def test_every_listed_module_imports(self):
        import importlib
        for name in gen_api_docs.MODULES:
            importlib.import_module(name)

    def test_committed_reference_is_fresh(self):
        """docs/api.md must match a regeneration of the current API."""
        committed = (ROOT / "docs" / "api.md").read_text()
        assert committed == gen_api_docs.generate(), (
            "docs/api.md is stale; run `python tools/gen_api_docs.py`")

    def test_reference_covers_key_symbols(self):
        text = (ROOT / "docs" / "api.md").read_text()
        for symbol in ("CubeFit", "RFI", "PlacementState", "audit",
                       "worst_overload_failures", "ClusterExperiment",
                       "competitive_ratio_upper_bound", "RecoveryPlanner",
                       "Repacker", "run_churn", "grouped_bar_chart",
                       "MetricsRegistry", "EventJournal"):
            assert symbol in text, f"{symbol} missing from docs/api.md"

    def test_no_private_names_documented(self):
        text = (ROOT / "docs" / "api.md").read_text()
        for line in text.splitlines():
            if line.startswith("### class `_") or \
                    line.startswith("### `_"):
                pytest.fail(f"private name documented: {line}")
