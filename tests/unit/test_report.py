"""Unit tests for the report/table rendering helpers."""

import pytest

from repro.analysis.report import (Table, figure6_table, theorem2_table)
from repro.analysis.stats import ConfidenceInterval
from repro.sim.figures import (Figure6Result, Figure6Row, Theorem2Result,
                               Theorem2Row)
from repro.errors import ConfigurationError


@pytest.fixture
def table():
    t = Table(title="demo", columns=["name", "count", "ratio"])
    t.add_row("alpha", 1200, 1.5)
    t.add_row("beta", 7, 0.25)
    return t


class TestTable:
    def test_text_rendering(self, table):
        text = table.to_text()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "1,200" in text
        assert "0.25" in text

    def test_markdown_rendering(self, table):
        md = table.to_markdown()
        assert md.splitlines()[0] == "**demo**"
        assert "| alpha | 1,200 | 1.50 |" in md

    def test_csv_rendering(self, table, tmp_path):
        path = tmp_path / "out.csv"
        text = table.to_csv(path)
        assert text.splitlines()[0] == "name,count,ratio"
        assert path.read_text() == text
        # raw values, not display formatting
        assert "1200" in text

    def test_row_arity_checked(self, table):
        with pytest.raises(ConfigurationError):
            table.add_row("only-one")

    def test_str_is_text(self, table):
        assert str(table) == table.to_text()


class TestResultTables:
    def test_figure6_table(self):
        result = Figure6Result(tenants=100, runs=2, rows_=[
            Figure6Row(distribution="uniform(0,0.2]",
                       savings_percent=30.61,
                       ci=ConfidenceInterval(mean=30.61, half_width=1.1,
                                             n=2),
                       rfi_servers=751.0, cubefit_servers=575.0)])
        table = figure6_table(result)
        csv_text = table.to_csv()
        assert "uniform(0,0.2]" in csv_text
        assert "30.61" in csv_text

    def test_theorem2_table(self):
        result = Theorem2Result(rows_=[Theorem2Row(2, 21, 5 / 3, 4)])
        table = theorem2_table(result)
        assert "1.666667" in table.to_csv()
