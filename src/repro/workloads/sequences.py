"""Tenant-sequence generation with reproducible seeding."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.tenant import Tenant, TenantSequence
from ..errors import ConfigurationError
from .distributions import ClientCountDistribution, LoadDistribution


def generate_sequence(distribution: LoadDistribution, n: int,
                      seed: Optional[int] = None,
                      start_id: int = 0) -> TenantSequence:
    """Draw an online sequence of ``n`` tenants from ``distribution``.

    The same ``(distribution, n, seed)`` triple always yields the same
    sequence, which is what makes paired algorithm comparisons (Figure 6)
    meaningful: both algorithms consume identical arrivals.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    loads = distribution.sample(rng, n)
    tenants = [Tenant(tenant_id=start_id + i, load=float(load))
               for i, load in enumerate(loads)]
    return TenantSequence(tenants=tenants,
                          description=distribution.name, seed=seed,
                          metadata={"n": n})


#: Chunk length :func:`stream_tenants` draws per RNG call.
STREAM_CHUNK = 8192


def stream_tenants(distribution: LoadDistribution, n: int,
                   seed: Optional[int] = None, start_id: int = 0,
                   chunk: int = STREAM_CHUNK):
    """Lazily yield the same ``n`` tenants :func:`generate_sequence` builds.

    Loads are drawn ``chunk`` at a time from one generator, so at most
    one chunk of the sequence is ever resident — the ingestion path
    for fleet-scale streams (millions of tenants) that must never
    materialize the whole arrival sequence.  numpy's ``Generator``
    distributions consume the underlying bit stream per element, so
    chunked draws reproduce the single ``sample(rng, n)`` call
    value-for-value: ``list(stream_tenants(d, n, seed))`` equals
    ``generate_sequence(d, n, seed).tenants`` exactly.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    rng = np.random.default_rng(seed)
    emitted = 0
    while emitted < n:
        count = min(chunk, n - emitted)
        loads = distribution.sample(rng, count)
        for load in loads:
            yield Tenant(tenant_id=start_id + emitted, load=float(load))
            emitted += 1


def generate_client_counts(distribution: ClientCountDistribution, n: int,
                           seed: Optional[int] = None) -> np.ndarray:
    """Draw ``n`` per-tenant client counts (cluster experiments)."""
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    return distribution.sample(rng, n)


def clients_to_sequence(counts: np.ndarray, model,
                        description: str = "",
                        seed: Optional[int] = None,
                        start_id: int = 0) -> TenantSequence:
    """Turn client counts into tenants via a linear load model.

    Each tenant's client count is kept in the sequence metadata so the
    cluster simulator can later attach that many closed-loop clients.
    """
    tenants = []
    for i, clients in enumerate(counts):
        load = min(max(model.load(int(clients)), 1e-6), 1.0)
        tenants.append(Tenant(tenant_id=start_id + i, load=float(load)))
    return TenantSequence(
        tenants=tenants, description=description, seed=seed,
        metadata={"clients": [int(c) for c in counts]})
