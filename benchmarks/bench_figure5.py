"""Benchmark E1 — Figure 5: p99 latency under worst-case failures.

Regenerates the paper's Figure 5 bars: CUBEFIT (gamma = 2 and 3, K = 5)
and RFI (gamma = 2, mu = 0.85) on a cluster filled to capacity, with the
worst-overload selection of 1 and 2 simultaneous server failures, for
uniform (1..15 clients) and zipfian (exponent 3) tenant populations.

Expected shape (paper, Section V-B):

* 1 failure: every configuration meets the 5 s p99 SLA;
* 2 failures: only CUBEFIT with 3 replicas stays within the SLA
  (paper: 4.27 s uniform / 4.19 s zipfian); CUBEFIT with 2 replicas and
  RFI violate it.
"""

import pytest

from repro.sim.figures import figure5


@pytest.fixture(scope="module")
def figure5_result(scale):
    return figure5(scale=scale, failure_counts=(1, 2), seed=0)


def test_figure5_benchmark(benchmark, scale):
    """Time one full Figure 5 regeneration (all 12 bars)."""
    result = benchmark.pedantic(
        lambda: figure5(scale=scale, failure_counts=(1, 2), seed=0),
        rounds=1, iterations=1)
    print()
    print(result)


class TestFigure5Shape:
    def test_all_configurations_meet_sla_at_one_failure(self,
                                                        figure5_result):
        for row in figure5_result.rows():
            if row.failures == 1:
                assert row.meets_sla, (
                    f"{row.configuration} ({row.distribution}) violated "
                    f"the SLA at 1 failure: p99={row.p99:.2f}s")

    def test_only_cubefit3_survives_two_failures(self, figure5_result):
        for row in figure5_result.rows():
            if row.failures != 2:
                continue
            if row.configuration == "CubeFit 3 replicas":
                assert row.meets_sla, (
                    f"CubeFit-3 should survive 2 failures "
                    f"({row.distribution}): p99={row.p99:.2f}s "
                    f"dropped={row.dropped}")
            else:
                assert not row.meets_sla, (
                    f"{row.configuration} should violate the SLA at 2 "
                    f"failures ({row.distribution}): p99={row.p99:.2f}s")

    def test_cubefit3_two_failure_latency_near_paper(self, figure5_result):
        """Paper: 4.27 s (uniform) and 4.19 s (zipfian)."""
        for dist in ("uniform", "zipfian"):
            row = figure5_result.row(dist, "CubeFit 3 replicas", 2)
            assert 3.0 <= row.p99 <= 5.0

    def test_no_queries_dropped_by_cubefit3(self, figure5_result):
        for row in figure5_result.rows():
            if row.configuration == "CubeFit 3 replicas":
                assert row.dropped == 0
