"""Integration: workload generation -> placement -> audit -> comparison."""

import pytest

from repro import (CubeFit, RFI, RobustBestFit, audit, best_lower_bound)
from repro.sim.runner import compare
from repro.workloads.distributions import (NormalizedClients, UniformLoad,
                                           ZipfClients)
from repro.workloads.sequences import generate_sequence


class TestPipeline:
    def test_all_algorithms_place_same_sequence_robustly(self):
        seq = generate_sequence(UniformLoad(0.6), 400, seed=5)
        for factory, failures in [
                (lambda: CubeFit(gamma=2, num_classes=10), None),
                (lambda: RFI(gamma=2), 1),
                (lambda: RobustBestFit(gamma=2), None)]:
            algo = factory()
            algo.consolidate(seq)
            assert audit(algo.placement, failures=failures).ok
            assert algo.placement.num_tenants == 400

    def test_cubefit_beats_rfi_on_small_tenants(self):
        """The headline claim at moderate scale: on small-tenant
        populations CubeFit uses measurably fewer servers than RFI at
        matched protection (gamma = 2, both tolerate one failure)."""
        factories = {
            "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
            "rfi": lambda: RFI(gamma=2),
        }
        dist = NormalizedClients(ZipfClients(3.0, 52))
        result = compare(factories, dist, n_tenants=3000, runs=2,
                         base_seed=0)
        savings = result.savings_percent("rfi", "cubefit")
        assert savings > 10.0, f"expected >10% savings, got {savings:.1f}%"

    def test_gamma3_trades_consolidation_for_protection(self):
        """Section V-B: 'CUBEFIT with 3 replicas ... trading off
        consolidation for the additional protection.'  CubeFit gamma=3
        reserves for two failures, so it may use *more* servers than a
        single-failure-reserving RFI — but never wildly more."""
        factories = {
            "cubefit": lambda: CubeFit(gamma=3, num_classes=10),
            "rfi": lambda: RFI(gamma=3),
        }
        dist = NormalizedClients(ZipfClients(3.0, 52))
        result = compare(factories, dist, n_tenants=3000, runs=2,
                         base_seed=0)
        cube = result.mean_servers("cubefit")
        rfi = result.mean_servers("rfi")
        assert cube < 1.5 * rfi

    def test_cubefit_near_lower_bound_on_uniform(self):
        seq = generate_sequence(UniformLoad(0.3), 2000, seed=9)
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(seq)
        lb = best_lower_bound(seq.loads, 2, 10)
        ratio = algo.placement.num_servers / lb
        assert ratio < 2.0

    def test_utilization_improves_with_first_stage(self):
        """Ablation: the m-fit first stage lifts utilization."""
        seq = generate_sequence(UniformLoad(0.5), 1500, seed=11)
        with_stage = CubeFit(gamma=2, num_classes=10)
        with_stage.consolidate(seq)
        without = CubeFit(gamma=2, num_classes=10, first_stage=False)
        without.consolidate(seq)
        assert with_stage.placement.num_servers <= \
            without.placement.num_servers
        assert audit(without.placement).ok
