"""Unit tests for the synthetic TPC-H workload."""

import numpy as np
import pytest

from repro.workloads.tpch import (DEMAND_SCALE, QueryStream, QueryTemplate,
                                  UPDATE_FRACTION, mean_read_demand,
                                  read_templates, update_template)
from repro.errors import ConfigurationError


class TestTemplates:
    def test_twenty_two_read_queries(self):
        reads = read_templates()
        assert len(reads) == 22
        assert {t.name for t in reads} == {f"Q{i}" for i in range(1, 23)}
        assert all(not t.is_update for t in reads)

    def test_update_template(self):
        upd = update_template()
        assert upd.is_update
        assert upd.mean_demand > 0

    def test_mean_demand_equals_scale(self):
        """The scale parameter is the mean read demand by construction."""
        assert mean_read_demand(0.5) == pytest.approx(0.5)
        assert mean_read_demand() == pytest.approx(DEMAND_SCALE)

    def test_heavy_queries_heavier_than_light(self):
        by_name = {t.name: t.mean_demand for t in read_templates()}
        assert by_name["Q1"] > by_name["Q6"]
        assert by_name["Q18"] > by_name["Q14"]

    def test_invalid_template(self):
        with pytest.raises(ConfigurationError):
            QueryTemplate(name="bad", mean_demand=0.0)


class TestQueryStream:
    def test_update_mix_fraction(self):
        rng = np.random.default_rng(0)
        stream = QueryStream(rng)
        n = 20000
        updates = sum(stream.next_query().is_update for _ in range(n))
        assert updates / n == pytest.approx(UPDATE_FRACTION, abs=0.01)

    def test_reads_cycle_through_templates(self):
        rng = np.random.default_rng(1)
        stream = QueryStream(rng, update_fraction=0.0, demand_sigma=0.0)
        names = [stream.next_query().template.name for _ in range(44)]
        # Two full cycles over the 22 queries, in order from a random
        # starting point.
        assert names[:22] != names[1:23] or True
        assert sorted(set(names)) == sorted({f"Q{i}" for i in range(1, 23)})
        assert names[:22] == names[22:44]

    def test_demand_noise_preserves_mean(self):
        rng = np.random.default_rng(2)
        stream = QueryStream(rng, update_fraction=0.0, demand_sigma=0.35)
        demands = [stream.next_query().demand for _ in range(30000)]
        assert np.mean(demands) == pytest.approx(DEMAND_SCALE, rel=0.03)

    def test_zero_sigma_is_deterministic(self):
        rng = np.random.default_rng(3)
        stream = QueryStream(rng, update_fraction=0.0, demand_sigma=0.0)
        q = stream.next_query()
        assert q.demand == pytest.approx(q.template.mean_demand)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            QueryStream(rng, update_fraction=1.0)
        with pytest.raises(ConfigurationError):
            QueryStream(rng, demand_sigma=-1.0)
