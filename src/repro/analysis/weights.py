"""The weighting argument of Theorem 2.

The proof assigns a *weight* to every replica so that

* (I) every bin of CUBEFIT (except O(1) of them) carries total weight at
  least 1, hence ``CUBEFIT(σ) <= W(σ) + O(1)``;
* (II) every bin of any *valid robust* packing carries total weight at
  most ``r``, hence ``OPT(σ) >= W(σ) / r``.

Concretely, a replica of size ``x`` in ``(1/(i+1), 1/i]`` (class ``tau =
i - gamma + 1 < K``) weighs ``1/tau``; a tiny (class-``K``) replica of
size ``x`` weighs ``x * d`` where ``d`` is the tiny *weight density*::

    d = (alpha_K + 1) / (alpha_K - gamma + 1)       ("alpha" policy)
    d = (K + gamma - 1) / (K - 1)                   ("last-class" policy)

so that a sealed multi-replica — whose size exceeds the reciprocal of
(threshold denominator + 1) — weighs at least ``1 / target_class``, the
weight of the slot it occupies.

All arithmetic is exact (:class:`fractions.Fraction`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

from ..core.classes import SizeClassifier
from ..core.config import TINY_POLICY_ALPHA, TINY_POLICIES
from ..errors import ConfigurationError

Number = Union[int, float, Fraction]


def tiny_weight_density(gamma: int, num_classes: int,
                        tiny_policy: str = TINY_POLICY_ALPHA) -> Fraction:
    """Weight per unit size of tiny (class-``K``) replicas."""
    if tiny_policy not in TINY_POLICIES:
        raise ConfigurationError(
            f"tiny_policy must be one of {TINY_POLICIES}, "
            f"got {tiny_policy!r}")
    classifier = SizeClassifier(num_classes=num_classes, gamma=gamma)
    if tiny_policy == TINY_POLICY_ALPHA:
        alpha = classifier.alpha()
        if alpha < gamma:
            raise ConfigurationError(
                f"'alpha' weights undefined: alpha_K = {alpha} < gamma = "
                f"{gamma} (need K > gamma^2 + gamma)")
        return Fraction(alpha + 1, alpha - gamma + 1)
    # last-class: multi-replicas target class K-1 with slot size
    # 1/(K+gamma-2); a sealed multi-replica has size > 1/(K+gamma-1)
    # (threshold minus the largest tiny replica), so density
    # (K+gamma-1)/(K-1) gives sealed weight > 1/(K-1).
    return Fraction(num_classes + gamma - 1, num_classes - 1)


def replica_weight(size: Number, gamma: int, num_classes: int,
                   tiny_policy: str = TINY_POLICY_ALPHA) -> Fraction:
    """Weight of one replica of the given ``size``."""
    frac_size = Fraction(size)
    if frac_size <= 0:
        raise ConfigurationError(f"replica size must be positive: {size!r}")
    classifier = SizeClassifier(num_classes=num_classes, gamma=gamma)
    tau = classifier.replica_class(float(frac_size))
    if tau < num_classes:
        return Fraction(1, tau)
    return frac_size * tiny_weight_density(gamma, num_classes, tiny_policy)


def tenant_weight(load: Number, gamma: int, num_classes: int,
                  tiny_policy: str = TINY_POLICY_ALPHA) -> Fraction:
    """Total weight of all ``gamma`` replicas of a tenant of ``load``."""
    replica_size = Fraction(load) / gamma
    return gamma * replica_weight(replica_size, gamma, num_classes,
                                  tiny_policy)


def total_weight(loads: Iterable[Number], gamma: int, num_classes: int,
                 tiny_policy: str = TINY_POLICY_ALPHA) -> Fraction:
    """``W(σ)``: total weight of all replicas of all tenants in ``loads``."""
    return sum((tenant_weight(load, gamma, num_classes, tiny_policy)
                for load in loads), Fraction(0))


def placement_bin_weights(placement, num_classes: int,
                          tiny_policy: str = TINY_POLICY_ALPHA) -> dict:
    """Total replica weight hosted by each server of a placement.

    This is the quantity behind statement (I) of Theorem 2: in a
    CUBEFIT packing, all but a constant number of bins carry weight at
    least 1 (the constant covers the last, partially filled group of
    each class and the active multi-replicas).
    :func:`count_underweight_bins` applies the statement.
    """
    gamma = placement.gamma
    weights = {}
    for server in placement:
        total = Fraction(0)
        for replica in server:
            total += replica_weight(Fraction(replica.load).
                                    limit_denominator(10 ** 9),
                                    gamma, num_classes, tiny_policy)
        weights[server.server_id] = float(total)
    return weights


def count_underweight_bins(placement, num_classes: int,
                           tiny_policy: str = TINY_POLICY_ALPHA,
                           threshold: float = 1.0) -> int:
    """Number of non-empty bins whose weight is below ``threshold``.

    Theorem 2 (I) says this is O(1) in the input length for CUBEFIT
    packings; tests assert it stays below a K- and gamma-dependent
    constant regardless of how many tenants were placed.
    """
    weights = placement_bin_weights(placement, num_classes, tiny_policy)
    return sum(
        1 for sid, weight in weights.items()
        if weight < threshold - 1e-9 and len(placement.server(sid)) > 0)
