"""Unit tests for the durable store: bind, logging, recovery, compaction.

Stores come from the shared ``store_factory`` fixture (tests/conftest),
which guarantees every store is closed at teardown — tests that
simulate a crash simply never close explicitly.
"""

import json

import pytest

from repro.algorithms.naive import (RobustBestFit, RobustFirstFit,
                                    RobustNextFit)
from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant
from repro.errors import ConfigurationError, StoreCorruptionError
from repro.obs import MetricsRegistry
from repro.store import DurableStore, diff_placements, recover


def _run_ops(algo, count=10, load=0.2, start_id=0):
    for i in range(start_id, start_id + count):
        algo.place(Tenant(i, load))
    return algo


class TestBindAndMeta:
    def test_bind_writes_meta(self, tmp_path, store_factory):
        store = store_factory()
        algo = RobustBestFit(gamma=2)
        algo.attach_store(store)
        meta = json.loads((tmp_path / "st" / "meta.json").read_text())
        assert meta["algorithm"] == "bestfit"
        assert meta["gamma"] == 2
        assert meta["capacity"] == 1.0

    def test_rebind_with_different_gamma_rejected(self, store_factory):
        store = store_factory()
        RobustBestFit(gamma=2).attach_store(store)
        store.close()
        store2 = store_factory()
        with pytest.raises(ConfigurationError):
            RobustBestFit(gamma=3).attach_store(store2)

    def test_missing_store_requires_create(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DurableStore(tmp_path / "nope", create=False)

    def test_recover_unbound_store_rejected(self, tmp_path, store_factory):
        store_factory().close()
        with pytest.raises(ConfigurationError):
            recover(tmp_path / "st")


class TestReplay:
    @pytest.mark.parametrize("factory", [
        lambda: RobustBestFit(gamma=1),
        lambda: RobustBestFit(gamma=3),
        lambda: RobustFirstFit(gamma=2),
        lambda: RobustNextFit(gamma=2),
        lambda: RFI(gamma=2),
        lambda: CubeFit(gamma=2),
    ])
    def test_wal_only_replay_matches_live_state(self, tmp_path,
                                                store_factory, factory):
        algo = factory()
        algo.attach_store(store_factory())
        _run_ops(algo, count=12)
        algo.remove(3)
        algo.update_load(5, 0.45)
        # Simulated crash: no close, no checkpoint.
        state = recover(tmp_path / "st")
        assert state.records_replayed > 0
        assert state.checkpoint_seq == 0
        assert diff_placements(algo.placement, state.placement,
                               compare_tags=False) == []

    def test_audit_runs_on_recovery(self, tmp_path, store_factory):
        algo = RobustBestFit(gamma=2)
        algo.attach_store(store_factory())
        _run_ops(algo, count=8)
        assert recover(tmp_path / "st").audit.ok

    def test_recover_rejects_gamma_tampering(self, tmp_path,
                                             store_factory):
        algo = RobustBestFit(gamma=2)
        store = store_factory()
        algo.attach_store(store)
        _run_ops(algo, count=4)
        store.checkpoint(algo.placement)
        store.close()
        meta_path = tmp_path / "st" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["gamma"] = 3
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreCorruptionError):
            recover(tmp_path / "st")

    def test_checkpoint_beyond_wal_is_corruption(self, tmp_path,
                                                 store_factory):
        algo = RobustBestFit(gamma=2)
        store = store_factory()
        algo.attach_store(store)
        _run_ops(algo, count=4)
        store.checkpoint(algo.placement)
        store.close()
        path = tmp_path / "st" / "checkpoint.json"
        payload = json.loads(path.read_text())
        payload["wal_applied"] = 10**6
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreCorruptionError):
            recover(tmp_path / "st")


class TestCheckpointAndCompaction:
    def _store_with_history(self, store_factory, ops=40):
        store = store_factory(segment_records=8)
        algo = RobustBestFit(gamma=2)
        algo.attach_store(store)
        _run_ops(algo, count=ops)
        return store, algo

    def test_tail_replay_is_o_of_k(self, tmp_path, store_factory):
        store, algo = self._store_with_history(store_factory)
        store.checkpoint(algo.placement)
        _run_ops(algo, count=3, start_id=100)  # the k-event tail
        obs = MetricsRegistry()
        state = recover(tmp_path / "st", obs=obs)
        snap = obs.snapshot()
        replayed = snap["store.recover.records_replayed"]["value"]
        assert replayed == state.records_replayed
        # 3 places => at most 3 op records plus any server opens; far
        # fewer than the 40+ pre-checkpoint records.
        assert 3 <= replayed <= 9
        assert diff_placements(algo.placement, state.placement) == []

    def test_compaction_preserves_recovered_state(self, tmp_path,
                                                  store_factory):
        store, algo = self._store_with_history(store_factory)
        store.checkpoint(algo.placement)
        _run_ops(algo, count=2, start_id=100)
        before = recover(tmp_path / "st")
        removed = store.compact()
        assert removed  # pre-checkpoint segments existed and were cut
        after = recover(tmp_path / "st")
        assert diff_placements(before.placement, after.placement) == []
        assert after.records_replayed == before.records_replayed

    def test_compact_without_checkpoint_is_noop(self, store_factory):
        store, _algo = self._store_with_history(store_factory)
        assert store.compact() == []

    def test_checkpoint_then_empty_tail_replays_nothing(self, tmp_path,
                                                        store_factory):
        store, algo = self._store_with_history(store_factory)
        store.checkpoint(algo.placement)
        store.close()
        assert recover(tmp_path / "st").records_replayed == 0


class TestAdopt:
    def _recovered(self, tmp_path, store_factory, gamma=2):
        algo = RobustBestFit(gamma=gamma)
        algo.attach_store(store_factory())
        _run_ops(algo, count=10)
        return recover(tmp_path / "st")

    @pytest.mark.parametrize("resume_cls", [
        RobustBestFit, RobustFirstFit, RobustNextFit, RFI,
    ])
    def test_adopt_then_continue(self, tmp_path, store_factory,
                                 resume_cls):
        state = self._recovered(tmp_path, store_factory)
        resume = resume_cls(gamma=state.gamma)
        resume.adopt(state.placement)
        assert resume.placement is state.placement
        resume.place(Tenant(500, 0.3))  # index must be live
        resume.remove(500)

    def test_cubefit_cannot_adopt(self, tmp_path, store_factory):
        state = self._recovered(tmp_path, store_factory)
        with pytest.raises(ConfigurationError):
            CubeFit(gamma=state.gamma).adopt(state.placement)

    def test_adopt_rejects_gamma_mismatch(self, tmp_path, store_factory):
        state = self._recovered(tmp_path, store_factory, gamma=2)
        with pytest.raises(ConfigurationError):
            RobustBestFit(gamma=3).adopt(state.placement)

    def test_adopt_rejects_used_algorithm(self, tmp_path, store_factory):
        state = self._recovered(tmp_path, store_factory)
        resume = RobustBestFit(gamma=state.gamma)
        resume.place(Tenant(0, 0.2))
        with pytest.raises(ConfigurationError):
            resume.adopt(state.placement)


class TestObsIntegration:
    def test_wal_append_counter(self, store_factory):
        obs = MetricsRegistry()
        store = store_factory(obs=obs)
        algo = RobustBestFit(gamma=2)
        algo.attach_store(store)
        _run_ops(algo, count=5)
        snap = obs.snapshot()
        assert snap["store.wal_append"]["value"] == store.wal.next_seq
        store.checkpoint(algo.placement)
        assert obs.snapshot()["store.checkpoint"]["value"] == 1
