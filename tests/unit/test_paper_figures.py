"""Recreations of the paper's illustrative figures (1, 2, 3) as tests.

These pin down that our model reproduces the exact arithmetic of the
paper's worked examples.  The replica-to-server assignments are
hand-constructed to satisfy the captions' quoted failover sums (the
figures themselves are not machine-readable in the source text).
"""

import pytest

from repro.core.cube import ClassCubes
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import (audit, brute_force_audit,
                                   exact_failure_audit)

#: Figure 1's tenant sequence: a..f.
SIGMA = [0.6, 0.3, 0.6, 0.78, 0.12, 0.36]


class TestFigure1a:
    """gamma = 2: a 5-server single-failure-robust packing of sigma.

    Caption: "if S1 fails, the load of replica a redirects to S2; this
    gives a total load of 0.6 + 0.3 <= 1 for S2.  Similarly, loads of b
    and e redirect to S3 and load of f redirects to S5."
    """

    def build(self):
        ps = PlacementState(gamma=2)
        for _ in range(5):
            ps.open_server()
        # servers S1..S5 are ids 0..4
        ps.place_tenant(Tenant(0, 0.60), [0, 1])   # a: S1, S2
        ps.place_tenant(Tenant(1, 0.30), [0, 2])   # b: S1, S3
        ps.place_tenant(Tenant(2, 0.60), [1, 2])   # c: S2, S3
        ps.place_tenant(Tenant(3, 0.78), [3, 4])   # d: S4, S5
        ps.place_tenant(Tenant(4, 0.12), [0, 2])   # e: S1, S3
        ps.place_tenant(Tenant(5, 0.36), [0, 4])   # f: S1, S5
        return ps

    def test_caption_s2_arithmetic(self):
        ps = self.build()
        # S2 holds a2 (0.3) and c1 (0.3).
        assert ps.server(1).load == pytest.approx(0.60)
        # S1's failure redirects a's other half: 0.6 + 0.3 <= 1.
        extra = ps.exact_failover_load(1, [0])
        assert extra == pytest.approx(0.30)
        assert ps.server(1).load + extra == pytest.approx(0.90)

    def test_caption_s3_and_s5_redirects(self):
        ps = self.build()
        # b and e redirect to S3 (id 2): +0.15 + 0.06
        assert ps.exact_failover_load(2, [0]) == pytest.approx(0.21)
        # f redirects to S5 (id 4): +0.18
        assert ps.exact_failover_load(4, [0]) == pytest.approx(0.18)

    def test_single_failure_robust_everywhere(self):
        """'In case of a single server's failure, the service continues
        without interruption.'"""
        ps = self.build()
        assert brute_force_audit(ps, failures=1).ok
        assert audit(ps, failures=1).ok


class TestFigure1b:
    """gamma = 3: a 6-server two-failure-robust packing of sigma.

    Caption: "if S1 and S2 fail, the total load of replicas of a
    redirects to S3, resulting in a total load of 0.46 + 2 x 0.2 <= 1."
    """

    def build(self):
        ps = PlacementState(gamma=3)
        for _ in range(6):
            ps.open_server()
        # replica loads: a .2, b .1, c .2, d .26, e .04, f .12
        ps.place_tenant(Tenant(0, 0.60), [0, 1, 2])   # a: S1 S2 S3
        ps.place_tenant(Tenant(1, 0.30), [0, 3, 5])   # b: S1 S4 S6
        ps.place_tenant(Tenant(2, 0.60), [1, 4, 5])   # c: S2 S5 S6
        ps.place_tenant(Tenant(3, 0.78), [3, 4, 2])   # d: S4 S5 S3
        ps.place_tenant(Tenant(4, 0.12), [0, 1, 5])   # e: S1 S2 S6
        ps.place_tenant(Tenant(5, 0.36), [0, 3, 5])   # f: S1 S4 S6
        return ps

    def test_caption_s3_arithmetic(self):
        ps = self.build()
        # S3 (id 2) holds a3 (0.2) and d3 (0.26): load 0.46.
        assert ps.server(2).load == pytest.approx(0.46)
        # S1 and S2 failing leaves a entirely on S3: +2 x 0.2.
        extra = ps.exact_failover_load(2, [0, 1])
        assert extra == pytest.approx(0.40)
        assert ps.server(2).load + extra == pytest.approx(0.86)

    def test_two_failure_robust_everywhere(self):
        """'In case of simultaneous failure of two servers, the system
        continues uninterrupted.'"""
        ps = self.build()
        assert exact_failure_audit(ps, failures=2).ok
        assert brute_force_audit(ps, failures=2).ok


class TestFigure3:
    """tau = 3, gamma = 3 cube structure with 27 tenants: 'no two
    servers share replicas of more than one tenant, e.g., tenant x = 2
    is placed at slot (0,0,1) of the first cube, slot (1,0,0) of the
    second cube, and (0,1,0) of the third cube.'"""

    def test_tenant_2_slots(self):
        cubes = ClassCubes(tau=3, gamma=3)
        cubes.advance()  # tenant 1 consumed counter 0
        addrs = cubes.current_addresses()  # tenant labelled 2: counter 1
        assert (addrs[0].bin_index, addrs[0].slot) == (0, 1)  # (0,0),1
        # (1,0,0): bin (1,0) = 3, slot 0
        assert (addrs[1].bin_index, addrs[1].slot) == (3, 0)
        # (0,1,0): bin (0,1) = 1, slot 0
        assert (addrs[2].bin_index, addrs[2].slot) == (1, 0)

    def test_27_tenants_pairwise_share_at_most_one(self):
        from repro.core.cubefit import CubeFit
        from repro.core.validation import max_shared_tenants
        # Loads in class 3 for gamma=3: replica in (1/6, 1/5], i.e.
        # tenant load in (1/2, 3/5].
        loads = [0.55] * 27
        algo = CubeFit(gamma=3, num_classes=5, first_stage=False)
        algo.consolidate(make_tenants(loads))
        assert max_shared_tenants(algo.placement) == 1
        assert brute_force_audit(algo.placement).ok
