"""Scaling study: servers and wall time as functions of tenant count.

Section V-C notes the simulator captures "the amount of time each
placement algorithm needs to consolidate tenants onto servers"; this
harness sweeps the sequence length to expose each algorithm's scaling
behaviour (CUBEFIT's near-linear time, the quadratic tendencies of
scan-heavy heuristics) and how the savings metric evolves with scale —
the paper's "asymptotic performance ... is significantly better when
there is a large number of tenants" claim, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.report import Table
from ..errors import ConfigurationError
from ..workloads.distributions import LoadDistribution
from ..workloads.sequences import generate_sequence
from .runner import AlgorithmFactory, run_once


@dataclass
class ScalingPoint:
    """One (algorithm, n) measurement."""

    algorithm: str
    tenants: int
    servers: int
    seconds: float
    utilization: float

    @property
    def tenants_per_second(self) -> float:
        return self.tenants / self.seconds if self.seconds > 0 \
            else float("inf")


@dataclass
class ScalingStudy:
    """All measurements of one sweep."""

    distribution: str
    points: List[ScalingPoint] = field(default_factory=list)
    #: Metrics snapshot accumulated over the sweep (None when the run
    #: was not instrumented).
    metrics: Optional[Dict[str, object]] = None

    def series(self, algorithm: str) -> List[ScalingPoint]:
        return [p for p in self.points if p.algorithm == algorithm]

    def savings_series(self, baseline: str,
                       candidate: str) -> List[tuple]:
        """(n, savings%) pairs — how the savings metric evolves with
        scale.

        Savings are measured *relative to the baseline*:
        ``(baseline - candidate) / baseline * 100`` is the percentage
        of the baseline's servers the candidate avoids, so 50% means
        "half the baseline fleet".  (An earlier revision divided by the
        candidate, silently inflating every figure; dividing by the
        baseline keeps the metric bounded by 100% and comparable
        across scales.)
        """
        base = {p.tenants: p.servers for p in self.series(baseline)}
        cand = {p.tenants: p.servers for p in self.series(candidate)}
        out = []
        for n in sorted(set(base) & set(cand)):
            if base[n] > 0:
                out.append((n, (base[n] - cand[n]) / base[n] * 100.0))
        return out

    def to_table(self) -> Table:
        table = Table(
            title=f"Scaling study on {self.distribution}",
            columns=["algorithm", "tenants", "servers", "seconds",
                     "tenants_per_s", "utilization"])
        for p in self.points:
            table.add_row(p.algorithm, p.tenants, p.servers,
                          round(p.seconds, 4),
                          round(p.tenants_per_second),
                          round(p.utilization, 4))
        return table

    def __str__(self) -> str:
        return self.to_table().to_text()


def scaling_study(factories: Dict[str, AlgorithmFactory],
                  distribution: LoadDistribution,
                  tenant_counts: Sequence[int],
                  seed: int = 0, obs=None) -> ScalingStudy:
    """Run every algorithm over increasing prefixes of one workload.

    Using nested prefixes of a single sequence (rather than fresh draws
    per size) isolates the scale effect from sampling noise.

    ``obs`` (a :class:`~repro.obs.MetricsRegistry`) is attached to every
    run; the accumulated snapshot lands in ``ScalingStudy.metrics``.
    """
    from ..obs import active
    gated = active(obs)
    if not factories:
        raise ConfigurationError("no algorithms to study")
    counts = sorted(set(tenant_counts))
    if not counts or counts[0] < 1:
        raise ConfigurationError(
            f"tenant_counts must be positive, got {tenant_counts}")
    full = generate_sequence(distribution, counts[-1], seed=seed)
    study = ScalingStudy(distribution=distribution.name)
    for n in counts:
        prefix = full.tenants[:n]
        from ..core.tenant import TenantSequence
        sequence = TenantSequence(tenants=prefix,
                                  description=distribution.name,
                                  seed=seed, metadata={"n": n})
        for name, factory in factories.items():
            stats = run_once(factory, sequence, obs=gated)
            study.points.append(ScalingPoint(
                algorithm=name, tenants=n, servers=stats.servers,
                seconds=stats.placement_seconds,
                utilization=stats.utilization))
    if gated is not None:
        study.metrics = gated.snapshot()
    return study
