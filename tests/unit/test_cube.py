"""Unit tests for the cube addressing machinery (Lemma 1)."""

import itertools

import pytest

from repro.core.cube import (ClassCubes, SlotAddress, from_digits,
                             rotate_right, to_digits)
from repro.errors import ConfigurationError


class TestDigits:
    def test_roundtrip(self):
        for base in (1, 2, 3, 5):
            width = 3
            for value in range(base ** width):
                digits = to_digits(value, base, width)
                assert from_digits(digits, base) == value

    def test_msb_first(self):
        assert to_digits(7, 3, 2) == (2, 1)   # 7 = 2*3 + 1
        assert to_digits(1, 3, 3) == (0, 0, 1)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            to_digits(9, 3, 2)
        with pytest.raises(ConfigurationError):
            to_digits(-1, 3, 2)

    def test_base_one(self):
        assert to_digits(0, 1, 2) == (0, 0)
        with pytest.raises(ConfigurationError):
            to_digits(1, 1, 2)

    def test_rotate_right(self):
        assert rotate_right((2, 1), 1) == (1, 2)
        assert rotate_right((0, 0, 1), 1) == (1, 0, 0)
        assert rotate_right((0, 0, 1), 2) == (0, 1, 0)
        assert rotate_right((1, 2, 3), 0) == (1, 2, 3)
        assert rotate_right((1, 2, 3), 3) == (1, 2, 3)


class TestPaperExamples:
    def test_tau3_gamma2_counter7(self):
        """Paper: tau=3, gamma=2, I=(21)_3: first replica at slot (2,1)
        of cube 1, second at (1,2) of cube 2."""
        cubes = ClassCubes(tau=3, gamma=2)
        cubes.counter = 7  # (2,1) in base 3
        addrs = cubes.current_addresses()
        assert addrs[0] == SlotAddress(group=0, bin_index=2, slot=1)
        assert addrs[1] == SlotAddress(group=1, bin_index=1, slot=2)

    def test_tau3_gamma3_counter1(self):
        """Paper: tau=3, gamma=3, I=(001)_3: replicas at (0,0,1),
        (1,0,0), (0,1,0) of cubes 1..3."""
        cubes = ClassCubes(tau=3, gamma=3)
        cubes.counter = 1
        addrs = cubes.current_addresses()
        # (0,0,1): bin (0,0)=0, slot 1
        assert addrs[0] == SlotAddress(group=0, bin_index=0, slot=1)
        # rotated (1,0,0): bin (1,0)=3, slot 0
        assert addrs[1] == SlotAddress(group=1, bin_index=3, slot=0)
        # rotated (0,1,0): bin (0,1)=1, slot 0
        assert addrs[2] == SlotAddress(group=2, bin_index=1, slot=0)


class TestStructure:
    @pytest.mark.parametrize("tau,gamma", [(1, 2), (2, 2), (3, 2),
                                           (2, 3), (3, 3), (4, 3)])
    def test_each_slot_visited_exactly_once_per_generation(self, tau, gamma):
        cubes = ClassCubes(tau=tau, gamma=gamma)
        seen = set()
        for _ in range(cubes.period):
            for addr in cubes.current_addresses():
                key = (addr.group, addr.bin_index, addr.slot)
                assert key not in seen, "slot reused within a generation"
                assert 0 <= addr.bin_index < cubes.bins_per_group
                assert 0 <= addr.slot < tau
                seen.add(key)
            cubes.advance()
        assert len(seen) == gamma * cubes.period

    @pytest.mark.parametrize("tau,gamma", [(2, 2), (3, 2), (2, 3), (3, 3)])
    def test_lemma1_no_two_bins_share_two_tenants(self, tau, gamma):
        """Two tenants sharing one bin must not share another bin."""
        cubes = ClassCubes(tau=tau, gamma=gamma)
        # tenant -> set of (group, bin_index) bins
        bins_of = {}
        for tenant in range(cubes.period):
            bins_of[tenant] = {(a.group, a.bin_index)
                               for a in cubes.current_addresses()}
            cubes.advance()
        for a, b in itertools.combinations(bins_of, 2):
            shared = bins_of[a] & bins_of[b]
            assert len(shared) <= 1, (
                f"tenants {a} and {b} share bins {shared}")

    def test_generation_wrap_allocates_fresh_bins(self):
        cubes = ClassCubes(tau=2, gamma=2)
        addr = cubes.current_addresses()[0]
        cubes.assign_bin(addr, server_id=99)
        wrapped = False
        for _ in range(cubes.period):
            wrapped = cubes.advance() or wrapped
        assert wrapped
        assert cubes.generation == 1
        assert cubes.bin_id(addr) is None  # fresh groups

    def test_assign_bin_twice_rejected(self):
        cubes = ClassCubes(tau=2, gamma=2)
        addr = cubes.current_addresses()[0]
        cubes.assign_bin(addr, 1)
        with pytest.raises(ConfigurationError):
            cubes.assign_bin(addr, 2)

    def test_tau1_single_slot_cube(self):
        cubes = ClassCubes(tau=1, gamma=3)
        assert cubes.period == 1
        addrs = cubes.current_addresses()
        assert [a.bin_index for a in addrs] == [0, 0, 0]
        assert [a.slot for a in addrs] == [0, 0, 0]
        assert cubes.advance()  # wraps immediately

    def test_open_bin_ids(self):
        cubes = ClassCubes(tau=2, gamma=2)
        addrs = cubes.current_addresses()
        cubes.assign_bin(addrs[0], 10)
        cubes.assign_bin(addrs[1], 11)
        assert sorted(cubes.open_bin_ids()) == [10, 11]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ClassCubes(tau=0, gamma=2)
        with pytest.raises(ConfigurationError):
            ClassCubes(tau=2, gamma=1)
