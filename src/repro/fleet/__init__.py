"""repro.fleet — sharded multi-controller placement fleet.

Partitions the server estate into N shards, each a full durable
controller (:mod:`repro.store` reused unchanged: per-shard WAL +
checkpoint lineage under ``<root>/shard-NNN/``), behind a
deterministic :class:`~repro.fleet.router.PlacementRouter` with
batched admission, spillover, and a cross-shard rebalancer whose
migrations are audited move by move.  Whole-shard failure is a typed,
drilled event: see :func:`~repro.fleet.chaos.run_fleet_chaos`.

Entry points:

* :class:`PlacementFleet` — live serial fleet (router + shards +
  rebalancer + crash/recover).
* :func:`run_fleet_soak` — route once, execute shards in parallel via
  :func:`repro.par.pmap` (bit-identical to serial), measure p50/p99
  placement latency, optionally SIGKILL-drill one shard.
* :func:`run_streaming_soak` — the bounded-memory sibling: lazily
  generated tenants flow through the router's windowed queue into
  per-shard ``place_batch`` chunks, so million-tenant streams never
  materialize; packings (unbudgeted) and the crash drill match the
  three-phase soak.
* :func:`run_fleet_chaos` — whole-shard crash mid-traffic with
  replica-for-replica recovery verification.
* CLI: ``repro fleet-soak`` / ``repro fleet-status``.
"""

from .chaos import FleetChaosConfig, FleetChaosReport, run_fleet_chaos
from .fleet import (FLEET_META_NAME, PlacementFleet, read_fleet_meta,
                    write_fleet_meta)
from .rebalance import Migration, rebalance
from .router import POLICIES, PlacementRouter, stable_hash
from .shard import ShardController, shard_directory
from .soak import (DEFAULT_WINDOW, FleetSoakConfig, FleetSoakResult,
                   ShardOutcome, run_fleet_soak, run_streaming_soak)

__all__ = [
    "PlacementFleet", "FLEET_META_NAME", "read_fleet_meta",
    "write_fleet_meta",
    "PlacementRouter", "POLICIES", "stable_hash",
    "ShardController", "shard_directory",
    "Migration", "rebalance",
    "FleetSoakConfig", "FleetSoakResult", "ShardOutcome",
    "run_fleet_soak", "run_streaming_soak", "DEFAULT_WINDOW",
    "FleetChaosConfig", "FleetChaosReport", "run_fleet_chaos",
]
