"""SVG renderings of the paper's figures from result objects.

Each function takes the corresponding result object from
:mod:`repro.sim.figures` and returns an :class:`repro.viz.svg.Document`;
``render_all`` writes the full set into a directory (what the CLI's
``--svg`` flag calls).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from ..errors import ConfigurationError
from .charts import (BarSeries, LineSeries, Threshold, grouped_bar_chart,
                     line_chart)
from .svg import Document

PathLike = Union[str, Path]


def render_figure5(result) -> Document:
    """Figure 5: p99 bars per (distribution, failures) group, one series
    per configuration, with the SLA as a status threshold line."""
    rows = result.rows()
    if not rows:
        raise ConfigurationError("empty Figure 5 result")
    configurations = list(dict.fromkeys(r.configuration for r in rows))
    groups = list(dict.fromkeys(
        (r.distribution, r.failures) for r in rows))
    group_labels = [f"{dist}, {f} failure{'s' if f != 1 else ''}"
                    for dist, f in groups]
    by_key: Dict[tuple, float] = {
        (r.configuration, r.distribution, r.failures): r.p99
        for r in rows}
    series = [
        BarSeries(name=conf,
                  values=[by_key[(conf, dist, f)] for dist, f in groups])
        for conf in configurations
    ]
    return grouped_bar_chart(
        title="Figure 5 — 99th-percentile latency under worst-case "
              "failures",
        group_labels=group_labels,
        series=series,
        y_label="p99 latency (s)",
        threshold=Threshold(value=result.sla_seconds,
                            label=f"SLA {result.sla_seconds:g}s"),
        width=940)


def render_figure6(result) -> Document:
    """Figure 6: one savings bar per distribution with 95% CI whiskers."""
    rows = result.rows()
    if not rows:
        raise ConfigurationError("empty Figure 6 result")
    series = [BarSeries(
        name="CubeFit savings over RFI",
        values=[r.savings_percent for r in rows],
        errors=[r.ci.half_width for r in rows])]
    return grouped_bar_chart(
        title=f"Figure 6 — % server savings of CubeFit over RFI "
              f"({result.tenants} tenants, {result.runs} runs, 95% CI)",
        group_labels=[r.distribution for r in rows],
        series=series,
        y_label="savings (%)",
        width=940)


def render_theorem2(result) -> Document:
    """Theorem 2: bound versus K, one line per gamma."""
    rows = result.rows()
    if not rows:
        raise ConfigurationError("empty Theorem 2 result")
    by_gamma: Dict[int, List[tuple]] = {}
    for r in rows:
        by_gamma.setdefault(r.gamma, []).append((r.num_classes, r.ratio))
    series = [LineSeries(name=f"gamma = {gamma}", points=points)
              for gamma, points in sorted(by_gamma.items())]
    return line_chart(
        title="Theorem 2 — competitive-ratio upper bound vs K",
        series=series,
        x_label="number of classes K",
        y_label="competitive-ratio bound",
        width=820)


def render_scaling(study) -> Document:
    """Scaling study: savings% versus n (the asymptotic claim)."""
    savings = study.savings_series("rfi", "cubefit")
    if not savings:
        raise ConfigurationError(
            "scaling study lacks rfi/cubefit series")
    series = [LineSeries(name="savings vs RFI",
                         points=[(float(n), s) for n, s in savings])]
    return line_chart(
        title=f"CubeFit savings vs RFI as tenants scale "
              f"({study.distribution})",
        series=series,
        x_label="tenants",
        y_label="savings (%)",
        width=720)


def render_sensitivity(curve) -> Document:
    """Sensitivity sweep (mu or K): servers vs parameter value."""
    if not curve.points:
        raise ConfigurationError("empty sensitivity curve")
    series = [LineSeries(
        name="servers",
        points=[(p.parameter, float(p.servers)) for p in curve.points])]
    return line_chart(
        title=f"{curve.parameter_name} sensitivity — "
              f"{curve.distribution} ({curve.tenants} tenants)",
        series=series,
        x_label=curve.parameter_name,
        y_label="servers used",
        width=720)


def render_churn(result) -> Document:
    """Churn timeline: live tenants and non-empty servers over time."""
    if not result.samples:
        raise ConfigurationError("churn result has no samples")
    series = [
        LineSeries(name="tenants",
                   points=[(s.time, float(s.tenants))
                           for s in result.samples]),
        LineSeries(name="servers",
                   points=[(s.time, float(s.servers_nonempty))
                           for s in result.samples]),
    ]
    return line_chart(
        title=f"Churn timeline — {result.algorithm} "
              f"(rate {result.config.arrival_rate:g}/t, mean life "
              f"{result.config.mean_lifetime:g}t)",
        series=series,
        x_label="time",
        y_label="count",
        width=760,
        y_from_zero=True)


def render_all(figure5_result=None, figure6_result=None,
               theorem2_result=None,
               directory: PathLike = ".") -> List[Path]:
    """Write SVGs for whichever results are provided; returns paths."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    if figure5_result is not None:
        written.append(render_figure5(figure5_result)
                       .save(out_dir / "figure5.svg"))
    if figure6_result is not None:
        written.append(render_figure6(figure6_result)
                       .save(out_dir / "figure6.svg"))
    if theorem2_result is not None:
        written.append(render_theorem2(theorem2_result)
                       .save(out_dir / "theorem2.svg"))
    return written
