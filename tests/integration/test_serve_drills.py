"""Kill/restart drills against a real ``repro serve`` daemon process.

These tests spawn the daemon with ``python -m repro serve``, drive
placements through the client, end it with a real signal, and recover
the store — the full durability contract of the service, process
boundaries included.  The SIGKILL variant is the headline acceptance
drill: a -9 mid-traffic must recover to an audit-clean placement whose
committed prefix matches exactly what the daemon acked.
"""

import signal

import pytest

from repro.errors import ConfigurationError
from repro.serve.client import ServeClient, wait_until_ready
from repro.serve.drill import run_serve_drill, spawn_daemon
from repro.sim.chaos import run_serve_chaos
from repro.store import recover


class TestServeDrills:
    def test_sigterm_drill_recovers_exact_state(self, tmp_path):
        report = run_serve_drill(tmp_path / "store",
                                 tmp_path / "serve.sock",
                                 mode="sigterm", tenants=60,
                                 checkpoint_interval=0.1)
        assert report.ok, str(report)
        assert report.exit_code == 0
        assert len(report.acked) == 60
        assert report.recovered_tenants == 60
        assert report.audit_ok
        # Graceful stop checkpointed on the way out: the recovery
        # replays no WAL tail on top of the final checkpoint.
        assert report.records_replayed == 0

    def test_sigkill_drill_recovers_acked_prefix(self, tmp_path):
        report = run_serve_drill(tmp_path / "store",
                                 tmp_path / "serve.sock",
                                 mode="sigkill", tenants=60,
                                 kill_at=30, checkpoint_interval=0.1)
        assert report.ok, str(report)
        assert report.exit_code == -signal.SIGKILL
        assert 1 <= len(report.acked) < 60
        assert report.unacked > 0
        assert report.audit_ok

    def test_serve_chaos_cycle_kill_restart_resume(self, tmp_path):
        report = run_serve_chaos(tmp_path / "store",
                                 tmp_path / "serve.sock",
                                 mode="sigkill", tenants=40,
                                 resume_tenants=8)
        assert report.ok, str(report)
        assert len(report.resumed) == 8
        assert report.final_tenants == report.drill.recovered_tenants + 8
        assert report.final_audit_ok

    def test_serve_chaos_with_armed_daemon_failpoint(self, tmp_path):
        """The daemon runs with ``serve.checkpoint_timer=raise`` armed
        through the environment: the timer round is skipped, traffic
        and recovery are unaffected."""
        report = run_serve_chaos(
            tmp_path / "store", tmp_path / "serve.sock",
            mode="sigterm", tenants=30, resume_tenants=5,
            fault_spec="serve.checkpoint_timer=raise")
        assert report.ok, str(report)

    def test_drill_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ConfigurationError, match="mode"):
            run_serve_drill(tmp_path / "store", tmp_path / "s.sock",
                            mode="sigquit")


class TestDaemonProcess:
    def test_daemon_answers_client_and_stops_clean(self, tmp_path):
        daemon = spawn_daemon(tmp_path / "store",
                              tmp_path / "serve.sock",
                              checkpoint_interval=0.0)
        try:
            wait_until_ready(tmp_path / "serve.sock", timeout=20.0)
            with ServeClient(tmp_path / "serve.sock") as client:
                assert client.place(1, 0.5) == [0, 1]
                stats = client.stats()
                assert stats["placement"]["tenants"] == 1
                assert stats["metrics"]["serve.admitted"]["value"] >= 2
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=30.0) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10.0)
        state = recover(tmp_path / "store")
        assert state.placement.num_tenants == 1
        assert state.audit.ok
