"""Unit tests for post-failure re-replication."""

import numpy as np
import pytest

from repro.core.cubefit import CubeFit
from repro.core.recovery import RecoveryPlanner
from repro.core.tenant import make_tenants
from repro.core.validation import audit
from repro.algorithms.rfi import RFI
from repro.errors import PlacementError


def packed_cubefit(n=120, gamma=2, seed=87):
    rng = np.random.default_rng(seed)
    loads = list(rng.uniform(0.02, 0.6, n))
    algo = CubeFit(gamma=gamma, num_classes=10)
    algo.consolidate(make_tenants(loads))
    return algo


class TestRecover:
    def test_failed_servers_emptied(self):
        algo = packed_cubefit()
        placement = algo.placement
        victim = max((s for s in placement if len(s) > 0),
                     key=lambda s: len(s)).server_id
        planner = RecoveryPlanner(placement)
        plan = planner.recover([victim])
        assert len(placement.server(victim)) == 0
        assert plan.replicas_relocated > 0
        assert all(m.source == victim for m in plan.moves)

    def test_replication_factor_restored(self):
        algo = packed_cubefit()
        placement = algo.placement
        victim = next(s.server_id for s in placement if len(s) > 0)
        RecoveryPlanner(placement).recover([victim])
        for tid in placement.tenant_ids:
            homes = placement.tenant_servers(tid)
            assert len(homes) == 2
            assert victim not in homes.values()

    def test_recovered_packing_still_robust(self):
        algo = packed_cubefit()
        placement = algo.placement
        nonempty = [s.server_id for s in placement if len(s) > 0]
        plan = RecoveryPlanner(placement).recover(nonempty[:2])
        report = audit(placement)
        assert report.ok, str(plan)

    def test_no_moves_for_empty_failed_server(self):
        algo = packed_cubefit()
        placement = algo.placement
        empty = [s.server_id for s in placement if len(s) == 0]
        if not empty:
            fresh = placement.open_server()
            empty = [fresh.server_id]
        plan = RecoveryPlanner(placement).recover([empty[0]])
        assert plan.replicas_relocated == 0
        assert plan.servers_opened == 0

    def test_targets_never_host_tenant_twice(self):
        algo = packed_cubefit(gamma=3)
        placement = algo.placement
        victim = next(s.server_id for s in placement if len(s) > 2)
        plan = RecoveryPlanner(placement).recover([victim])
        for move in plan.moves:
            homes = list(placement.tenant_servers(
                move.tenant_id).values())
            assert len(homes) == len(set(homes)) == 3

    def test_unknown_server_rejected(self):
        algo = packed_cubefit()
        with pytest.raises(PlacementError):
            RecoveryPlanner(algo.placement).recover([99999])

    def test_plan_str(self):
        algo = packed_cubefit()
        placement = algo.placement
        victim = next(s.server_id for s in placement if len(s) > 0)
        plan = RecoveryPlanner(placement).recover([victim])
        assert "RecoveryPlan" in str(plan)

    def test_recovery_after_rfi_packing(self):
        rng = np.random.default_rng(89)
        loads = list(rng.uniform(0.05, 0.5, 100))
        algo = RFI(gamma=2)
        algo.consolidate(make_tenants(loads))
        placement = algo.placement
        victim = next(s.server_id for s in placement if len(s) > 0)
        RecoveryPlanner(placement, failures=1).recover([victim])
        assert audit(placement, failures=1).ok

    def test_load_relocated_accounting(self):
        algo = packed_cubefit()
        placement = algo.placement
        victim = next(s.server_id for s in placement if len(s) > 0)
        before = placement.server(victim).load
        plan = RecoveryPlanner(placement).recover([victim])
        assert plan.load_relocated == pytest.approx(before)


class TestImmatureBinOwnership:
    """Regression: generic movers (recovery, repack) must not place
    replicas into CUBEFIT's immature cube bins — their unfilled slots
    are handed to future second-stage tenants without re-checking.
    Found by the soak harness at op 512 of seed 0."""

    def test_recovery_avoids_immature_bins(self):
        algo = packed_cubefit(n=40, seed=101)
        placement = algo.placement
        immature = {s.server_id for s in placement
                    if s.tags.get("mature") is False and len(s) > 0}
        victim = next(s.server_id for s in placement if len(s) > 0)
        plan = RecoveryPlanner(placement).recover([victim])
        for move in plan.moves:
            assert move.target not in immature

    def test_soak_mix_stays_robust(self):
        """The original failing scenario, pinned."""
        from repro.sim.soak import SoakConfig, run_soak
        result = run_soak(lambda: CubeFit(gamma=2, num_classes=10),
                          SoakConfig(operations=600, seed=0))
        assert result.ok, str(result)
