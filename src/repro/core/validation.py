"""Robustness audits for packings (Theorem 1 / Lemma 1 machinery).

Three levels of checking are provided:

* :func:`audit` — the paper's condition using the worst-case top-``f``
  shared-load bound; linear in servers, used everywhere.
* :func:`brute_force_audit` — enumerates *every* failure set of size up
  to ``f`` and applies the conservative formula; exponential, intended
  for tests on small packings to validate :func:`audit` itself.
* :func:`exact_failure_audit` — enumerates failure sets but uses the
  *exact* redistribution semantics (a tenant's load is re-shared evenly
  among surviving replicas).  Always at least as permissive as the
  conservative audits.

For audit-after-every-arrival workloads :class:`IncrementalAuditor`
keeps the full per-server slack picture warm between calls: it drains
the placement's dirty tracker and re-evaluates only the servers a
mutation affected, so each check costs O(affected servers) instead of
O(fleet) while returning the same :class:`AuditReport` :func:`audit`
would.

Plus :func:`max_shared_tenants`, which checks Lemma 1's structural
property (no two bins share replicas of more than one tenant) for
second-stage bins.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import RobustnessViolation
from .placement import PlacementState
from .tenant import LOAD_EPS


@dataclass
class Violation:
    """One server that would be overloaded under some failure set."""

    server_id: int
    load: float
    failover_load: float
    failed_set: Tuple[int, ...] = ()

    @property
    def overload(self) -> float:
        """Load in excess of unit capacity."""
        return self.load + self.failover_load - 1.0


@dataclass
class AuditReport:
    """Outcome of a robustness audit."""

    failures: int
    num_servers: int
    violations: List[Violation] = field(default_factory=list)
    min_slack: float = float("inf")

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            worst = max(self.violations, key=lambda v: v.overload)
            raise RobustnessViolation(
                f"{len(self.violations)} server(s) overloaded under "
                f"{self.failures}-failure audit; worst: server "
                f"{worst.server_id} exceeds capacity by {worst.overload:.6f}",
                server_id=worst.server_id,
                failed_set=worst.failed_set,
                overload=worst.overload)

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (f"AuditReport(failures={self.failures}, "
                f"servers={self.num_servers}, min_slack={self.min_slack:.6f},"
                f" {status})")


def audit(placement: PlacementState,
          failures: Optional[int] = None) -> AuditReport:
    """Check every server against the worst-case failover bound.

    ``failures`` defaults to ``gamma - 1``, the paper's robustness target.
    Because shared loads are non-negative, the worst failure set for a
    server is its ``failures`` largest shared partners, so this audit is
    equivalent to checking all failure sets while running in
    ``O(servers * partners)``.
    """
    f = placement.gamma - 1 if failures is None else failures
    report = AuditReport(failures=f, num_servers=placement.num_servers)
    for server in placement:
        failover = placement.worst_failover_load(server.server_id, f)
        slack = server.capacity - server.load - failover
        report.min_slack = min(report.min_slack, slack)
        if slack < -LOAD_EPS:
            partners = placement.shared_partners(server.server_id)
            worst = tuple(sorted(partners, key=partners.get,
                                 reverse=True)[:f])
            report.violations.append(Violation(
                server_id=server.server_id, load=server.load,
                failover_load=failover, failed_set=worst))
    if placement.num_servers == 0:
        report.min_slack = placement.capacity
    return report


class IncrementalAuditor:
    """Audit a packing in O(affected servers) per check.

    Subscribes to the placement's dirty tracker and keeps a per-server
    slack table plus the current violation set warm between calls;
    :meth:`check` re-evaluates only the servers mutated since the last
    check and returns a report equivalent to :func:`audit`'s.

    ``min_slack`` is maintained with a lazy min-heap: each refreshed
    server pushes its new slack, and stale heap heads (entries whose
    slack no longer matches the table) are popped on read.  The heap is
    rebuilt when stale entries dominate, keeping memory linear.

    Single-writer discipline: results are only meaningful if every
    mutation of the placement happens between :meth:`check` calls of
    the same auditor (the normal online-placement loop).
    """

    def __init__(self, placement: PlacementState,
                 failures: Optional[int] = None) -> None:
        self.placement = placement
        self.failures = placement.gamma - 1 if failures is None \
            else failures
        self._tracker = placement.dirty_tracker()
        self._slack: Dict[int, float] = {}
        self._violations: Dict[int, Violation] = {}
        self._heap: List[Tuple[float, int]] = []

    def _refresh_dirty(self) -> None:
        placement = self.placement
        f = self.failures
        for sid in self._tracker.drain():
            server = placement.server(sid)
            failover = placement.worst_failover_load(sid, f)
            slack = server.capacity - server.load - failover
            self._slack[sid] = slack
            heapq.heappush(self._heap, (slack, sid))
            if slack < -LOAD_EPS:
                partners = placement.shared_partners(sid)
                worst = tuple(sorted(partners, key=partners.get,
                                     reverse=True)[:f])
                self._violations[sid] = Violation(
                    server_id=sid, load=server.load,
                    failover_load=failover, failed_set=worst)
            else:
                self._violations.pop(sid, None)
        if len(self._heap) > 4 * max(len(self._slack), 16):
            self._heap = [(slack, sid)
                          for sid, slack in self._slack.items()]
            heapq.heapify(self._heap)

    def min_slack(self) -> float:
        """Smallest per-server slack across the fleet."""
        heap, table = self._heap, self._slack
        while heap and table.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)
        if not heap:
            return self.placement.capacity
        return heap[0][0]

    def check(self) -> AuditReport:
        """Re-audit the servers affected since the last check."""
        self._refresh_dirty()
        report = AuditReport(failures=self.failures,
                             num_servers=self.placement.num_servers)
        report.violations = sorted(self._violations.values(),
                                   key=lambda v: v.server_id)
        report.min_slack = self.min_slack()
        return report

    def close(self) -> None:
        """Unsubscribe from the placement's invalidation stream."""
        self._tracker.close()


def brute_force_audit(placement: PlacementState,
                      failures: Optional[int] = None) -> AuditReport:
    """Enumerate all failure sets of size up to ``failures``.

    Uses the conservative per-failed-server shared-load formula exactly
    as written in Section II.  Exponential in the failure budget times
    servers; only for tests on small packings.
    """
    f = placement.gamma - 1 if failures is None else failures
    report = AuditReport(failures=f, num_servers=placement.num_servers)
    ids = placement.server_ids
    for server in placement:
        others = [i for i in ids if i != server.server_id]
        worst_extra = 0.0
        worst_set: Tuple[int, ...] = ()
        for size in range(0, min(f, len(others)) + 1):
            for failed in itertools.combinations(others, size):
                extra = placement.failover_load(server.server_id, failed)
                if extra > worst_extra:
                    worst_extra = extra
                    worst_set = failed
        slack = server.capacity - server.load - worst_extra
        report.min_slack = min(report.min_slack, slack)
        if slack < -LOAD_EPS:
            report.violations.append(Violation(
                server_id=server.server_id, load=server.load,
                failover_load=worst_extra, failed_set=worst_set))
    if placement.num_servers == 0:
        report.min_slack = placement.capacity
    return report


def exact_failure_audit(placement: PlacementState,
                        failures: Optional[int] = None) -> AuditReport:
    """Enumerate failure sets under exact redistribution semantics.

    Matches what the cluster simulator does when servers actually fail: a
    tenant whose ``k`` servers failed re-shares its load evenly among the
    ``gamma - k`` survivors.  Exponential; for tests.
    """
    f = placement.gamma - 1 if failures is None else failures
    report = AuditReport(failures=f, num_servers=placement.num_servers)
    ids = placement.server_ids
    for server in placement:
        others = [i for i in ids if i != server.server_id]
        worst_extra = 0.0
        worst_set: Tuple[int, ...] = ()
        for size in range(0, min(f, len(others)) + 1):
            for failed in itertools.combinations(others, size):
                extra = placement.exact_failover_load(server.server_id,
                                                      failed)
                if extra > worst_extra:
                    worst_extra = extra
                    worst_set = failed
        slack = server.capacity - server.load - worst_extra
        report.min_slack = min(report.min_slack, slack)
        if slack < -LOAD_EPS:
            report.violations.append(Violation(
                server_id=server.server_id, load=server.load,
                failover_load=worst_extra, failed_set=worst_set))
    if placement.num_servers == 0:
        report.min_slack = placement.capacity
    return report


def domain_failure_audit(placement: PlacementState,
                         domain_of: Dict[int, int]) -> AuditReport:
    """Audit against whole-domain failures (rack / availability zone).

    The paper's guarantee covers any ``gamma - 1`` *individual* server
    failures; losing an entire fault domain fails many servers at once
    and is **not** covered — each survivor absorbs redirects from every
    failed partner simultaneously.  This audit quantifies the exposure:
    for each domain ``d``, fail every server with ``domain_of[sid] ==
    d`` and evaluate the conservative failover formula on all
    survivors.  Servers missing from ``domain_of`` are treated as their
    own singleton domains.

    Returns a report whose violations carry the overload a domain loss
    would cause — useful with
    ``CubeFitConfig.enforce_fault_domains``, where each tenant loses at
    most one replica per domain so the *availability* story survives
    even when the latency one does not.
    """
    report = AuditReport(failures=-1, num_servers=placement.num_servers)
    domains: Dict[int, List[int]] = {}
    for sid in placement.server_ids:
        key = domain_of.get(sid, -1 - sid)  # singleton for untagged
        domains.setdefault(key, []).append(sid)
    for domain, failed in sorted(domains.items()):
        failed_set = set(failed)
        for server in placement:
            if server.server_id in failed_set:
                continue
            extra = placement.failover_load(server.server_id, failed)
            slack = server.capacity - server.load - extra
            report.min_slack = min(report.min_slack, slack)
            if slack < -LOAD_EPS:
                report.violations.append(Violation(
                    server_id=server.server_id, load=server.load,
                    failover_load=extra, failed_set=tuple(failed)))
    if placement.num_servers == 0:
        report.min_slack = placement.capacity
    return report


def shared_tenant_counts(placement: PlacementState
                         ) -> Dict[Tuple[int, int], int]:
    """Number of tenants shared by each pair of servers that share any.

    Key is the ordered pair ``(min_id, max_id)``.
    """
    counts: Dict[Tuple[int, int], int] = {}
    for tenant_id in placement.tenant_ids:
        homes = sorted(placement.tenant_servers(tenant_id).values())
        for a, b in itertools.combinations(homes, 2):
            counts[(a, b)] = counts.get((a, b), 0) + 1
    return counts


def max_shared_tenants(placement: PlacementState) -> int:
    """Largest number of tenants any two servers share (Lemma 1 checks
    this is 1 for pure second-stage CUBEFIT packings)."""
    counts = shared_tenant_counts(placement)
    return max(counts.values()) if counts else 0
