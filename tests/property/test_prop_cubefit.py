"""Property-based tests of CUBEFIT's invariants (Theorem 1)."""

from hypothesis import given, settings, strategies as st

from repro.core.cubefit import CubeFit
from repro.core.tenant import make_tenants
from repro.core.validation import audit
from repro.algorithms.lower_bound import capacity_lower_bound

loads_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60)


@given(loads=loads_strategy,
       gamma=st.sampled_from([2, 3]),
       num_classes=st.sampled_from([2, 3, 5, 10]))
@settings(max_examples=60, deadline=None)
def test_packing_is_always_robust(loads, gamma, num_classes):
    """For every load sequence, the resulting packing survives any
    gamma-1 simultaneous failures (the paper's Theorem 1)."""
    algo = CubeFit(gamma=gamma, num_classes=num_classes)
    algo.consolidate(make_tenants(loads))
    report = audit(algo.placement)
    assert report.ok, str(report)


@given(loads=loads_strategy, gamma=st.sampled_from([2, 3]))
@settings(max_examples=40, deadline=None)
def test_every_tenant_on_gamma_distinct_servers(loads, gamma):
    algo = CubeFit(gamma=gamma, num_classes=5)
    algo.consolidate(make_tenants(loads))
    for tid in range(len(loads)):
        homes = algo.placement.tenant_servers(tid)
        assert len(homes) == gamma
        assert len(set(homes.values())) == gamma


@given(loads=loads_strategy)
@settings(max_examples=40, deadline=None)
def test_server_count_at_least_capacity_bound(loads):
    algo = CubeFit(gamma=2, num_classes=10)
    algo.consolidate(make_tenants(loads))
    assert algo.placement.num_servers >= capacity_lower_bound(loads)


@given(loads=loads_strategy)
@settings(max_examples=30, deadline=None)
def test_no_server_exceeds_unit_capacity(loads):
    algo = CubeFit(gamma=3, num_classes=5)
    algo.consolidate(make_tenants(loads))
    for server in algo.placement:
        assert server.load <= 1.0 + 1e-9


@given(loads=loads_strategy,
       first_stage=st.booleans(),
       tiny_first=st.booleans())
@settings(max_examples=30, deadline=None)
def test_robust_under_all_stage_configurations(loads, first_stage,
                                               tiny_first):
    algo = CubeFit(gamma=2, num_classes=5, first_stage=first_stage,
                   first_stage_tiny=tiny_first)
    algo.consolidate(make_tenants(loads))
    assert audit(algo.placement).ok


@given(loads=loads_strategy)
@settings(max_examples=20, deadline=None)
def test_total_placed_load_preserved(loads):
    """Consolidation neither loses nor duplicates load."""
    algo = CubeFit(gamma=2, num_classes=10)
    algo.consolidate(make_tenants(loads))
    assert abs(algo.placement.total_load() - sum(loads)) < 1e-6 \
        + 1e-9 * len(loads)
