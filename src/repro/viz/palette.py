"""Chart color roles (validated reference palette, light mode).

Colors come from a pre-validated categorical palette: lightness band,
chroma floor, CVD adjacent separation and surface contrast were checked
with the standard six-checks validator.  Slots 2 and 3 sit below 3:1
contrast on the light surface, so every chart here carries visible text
labels in ink colors (the relief rule) — identity is never color-alone.

Rules encoded by these roles:

* categorical hues are assigned to series in fixed slot order, never
  cycled or generated;
* status colors (the SLA line) are reserved and never reused as series
  colors;
* text always wears ink tokens, never a series color.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError

#: Chart surface (light mode).
SURFACE = "#fcfcfb"

#: Ink tokens for text.
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
TEXT_MUTED = "#8a8984"

#: Recessive grid and axis strokes.
GRID = "#e4e3df"
AXIS = "#b9b8b2"

#: Categorical series slots, fixed order (validated set).
SERIES: List[str] = [
    "#2a78d6",  # 1 blue
    "#1baf7a",  # 2 aqua
    "#eda100",  # 3 yellow
    "#008300",  # 4 green
    "#4a3aa7",  # 5 violet
]

#: Reserved status colors (never used for series).
STATUS_SERIOUS = "#e34948"   # the SLA threshold line
STATUS_GOOD = "#008300"


def series_color(index: int) -> str:
    """Color of series ``index`` (0-based, fixed order).

    More series than slots is a design error — fold extras into
    "Other" or use small multiples instead of generating hues.
    """
    if index < 0:
        raise ConfigurationError(f"series index must be >= 0: {index}")
    if index >= len(SERIES):
        raise ConfigurationError(
            f"only {len(SERIES)} categorical slots; fold series "
            f"{index + 1}+ into 'Other' or use small multiples")
    return SERIES[index]
