"""Unit tests for the Table I cost model."""

import pytest

from repro.analysis.cost import (C4_4XLARGE_HOURLY_USD, HOURS_PER_YEAR,
                                 CostModel)
from repro.errors import ConfigurationError


class TestConstants:
    def test_paper_price(self):
        assert C4_4XLARGE_HOURLY_USD == 0.822

    def test_hours_per_year(self):
        assert HOURS_PER_YEAR == 8760


class TestCostModel:
    def test_yearly_cost(self):
        model = CostModel()
        assert model.yearly_cost(1) == pytest.approx(0.822 * 8760)

    def test_paper_uniform_row(self):
        """Table I: 2,506 servers saved -> $18,045,004 per year."""
        model = CostModel()
        savings = model.yearly_savings(10951, 10951 - 2506)
        assert savings == pytest.approx(18_045_000, abs=5_000)

    def test_paper_zipfian_row(self):
        """Table I: 496 servers saved -> $3,571,557 per year."""
        model = CostModel()
        savings = model.yearly_savings(2218, 2218 - 496)
        assert savings == pytest.approx(3_571_600, abs=5_000)

    def test_negative_savings_when_candidate_worse(self):
        model = CostModel()
        assert model.yearly_savings(10, 12) < 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            CostModel(hourly_usd=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(hours_per_year=0)
        with pytest.raises(ConfigurationError):
            CostModel().yearly_cost(-1)
