"""Integration tests for the command-line interface."""

import pytest

import repro.cli as cli
from repro.sim.figures import Theorem2Result, Theorem2Row


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["bogus"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestDispatch:
    def test_theorem2_stub(self, monkeypatch, capsys):
        stub = Theorem2Result(rows_=[Theorem2Row(2, 21, 5 / 3, 4)])
        monkeypatch.setattr(cli, "theorem2", lambda: stub)
        assert cli.main(["theorem2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out
        assert "scale profile" in out

    def test_all_runs_every_command(self, monkeypatch, capsys):
        calls = []
        for name in list(cli._COMMANDS):
            monkeypatch.setitem(cli._COMMANDS, name,
                                lambda args, n=name: calls.append(n))
        assert cli.main(["all"]) == 0
        assert sorted(calls) == sorted(cli._COMMANDS)

    def test_seed_forwarded(self, monkeypatch):
        seen = {}

        def fake_figure6(base_seed):
            seen["seed"] = base_seed

            class R:
                def __str__(self):
                    return "ok"
            return R()

        monkeypatch.setattr(cli, "figure6",
                            lambda base_seed: fake_figure6(base_seed))
        cli.main(["figure6", "--seed", "42"])
        assert seen["seed"] == 42


class TestCalibrateCommand:
    def test_calibrate_prints_model(self, monkeypatch, capsys):
        from repro.cluster.calibration import CalibrationResult
        from repro.workloads.loadmodel import BoundaryPoint, \
            LinearLoadModel

        stub = CalibrationResult(
            model=LinearLoadModel(delta=0.019, beta=0.012),
            boundary=[BoundaryPoint(1, 52), BoundaryPoint(4, 50)])
        monkeypatch.setattr(cli, "calibrate_load_model", lambda: stub)
        cli.main(["calibrate"])
        out = capsys.readouterr().out
        assert "C (max clients, one tenant) = 52" in out


class TestExtensionCommands:
    def test_churn_runs_quickly(self, monkeypatch, capsys):
        from repro.sim.churn import ChurnConfig, ChurnResult

        def fake_run_churn(factory, dist, config):
            algo = factory()
            return ChurnResult(algorithm=algo.name, config=config,
                               arrivals=10, departures=5)

        import repro.sim.churn as churn_mod
        monkeypatch.setattr(churn_mod, "run_churn", fake_run_churn)
        cli.main(["churn"])
        out = capsys.readouterr().out
        assert "Churn study" in out
        assert "cubefit" in out and "rfi" in out

    def test_metrics_renders_snapshot(self, capsys):
        """Acceptance: `repro metrics` renders a metrics snapshot for a
        churn run, plus the journal's replay counts."""
        assert cli.main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "placement.place" in out
        assert "placement.place.seconds" in out
        assert "churn.tenants" in out
        assert "journal:" in out and "place=" in out

    def test_metrics_csv_export(self, tmp_path, capsys):
        cli.main(["metrics", "--csv", str(tmp_path)])
        text = (tmp_path / "metrics.csv").read_text()
        assert text.splitlines()[0].startswith("metric,kind")

    def test_explain_without_trace(self, monkeypatch, capsys):
        # Shrink the default workload through the generate function.
        import repro.workloads.sequences as seq_mod
        original = seq_mod.generate_sequence

        def small(dist, n, seed=None, start_id=0):
            return original(dist, min(n, 120), seed=seed,
                            start_id=start_id)

        monkeypatch.setattr(seq_mod, "generate_sequence", small)
        cli.main(["explain"])
        out = capsys.readouterr().out
        assert "capacity split" in out
        assert "cubefit" in out and "rfi" in out

    def test_explain_with_trace(self, tmp_path, capsys):
        from repro.core.tenant import TenantSequence, make_tenants
        from repro.workloads.trace_io import save_trace

        path = tmp_path / "trace.json"
        save_trace(TenantSequence(tenants=make_tenants([0.4] * 30)),
                   path)
        cli.main(["explain", "--trace", str(path)])
        out = capsys.readouterr().out
        assert "loaded 30 tenants" in out

    def test_scaling_prints_savings_evolution(self, monkeypatch,
                                              capsys):
        import repro.sim.timing as timing_mod
        original = timing_mod.scaling_study

        def small(factories, dist, counts, seed=0):
            return original(factories, dist, [60, 200], seed=seed)

        monkeypatch.setattr(timing_mod, "scaling_study", small)
        cli.main(["scaling"])
        out = capsys.readouterr().out
        assert "Scaling study" in out
        assert "savings over RFI by scale" in out
