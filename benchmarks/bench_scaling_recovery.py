"""Benchmarks: scaling study (E6 extension) and failure recovery.

* The scaling study quantifies the paper's "asymptotic performance of
  the CUBEFIT algorithm is significantly better when there is a large
  number of tenants": the savings metric versus RFI turns from negative
  at a few hundred tenants to the paper's ~25-30% as n grows.
* The recovery bench measures re-replication after failures: every
  replica of the failed servers is re-homed under the full robustness
  check, restoring the replication factor.
"""

import numpy as np
import pytest

from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.core.recovery import RecoveryPlanner
from repro.core.tenant import make_tenants
from repro.core.validation import audit
from repro.sim.timing import scaling_study
from repro.workloads.distributions import UniformLoad


FACTORIES = {
    "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
    "rfi": lambda: RFI(gamma=2),
}


def test_scaling_study_benchmark(benchmark):
    counts = [250, 1_000, 4_000]

    def run():
        return scaling_study(FACTORIES, UniformLoad(0.3), counts, seed=0)

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(study)
    savings = study.savings_series("rfi", "cubefit")
    benchmark.extra_info["savings_by_n"] = [
        (n, round(s, 1)) for n, s in savings]
    # The asymptotic claim: savings strictly improve with scale and are
    # clearly positive at the top end.
    values = [s for _n, s in savings]
    assert values[-1] > values[0]
    assert values[-1] > 15.0


def test_recovery_benchmark(benchmark):
    rng = np.random.default_rng(0)
    loads = list(rng.uniform(0.02, 0.6, 2_000))

    def build():
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(make_tenants(loads))
        return algo.placement

    def run():
        placement = build()
        victims = sorted(
            (s.server_id for s in placement if len(s) > 0))[:5]
        plan = RecoveryPlanner(placement).recover(victims)
        return placement, plan

    placement, plan = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["replicas_relocated"] = plan.replicas_relocated
    benchmark.extra_info["servers_opened"] = plan.servers_opened
    assert audit(placement).ok
    for tid in placement.tenant_ids:
        assert len(placement.tenant_servers(tid)) == 2
