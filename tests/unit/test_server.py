"""Unit tests for repro.core.server."""

import pytest

from repro.core.server import Server
from repro.core.tenant import Replica
from repro.errors import CapacityError, PlacementError


def replica(tenant_id, index=0, load=0.3):
    return Replica(tenant_id=tenant_id, index=index, load=load)


class TestServerAdd:
    def test_add_updates_load(self):
        s = Server(server_id=0)
        s.add(replica(1, load=0.4))
        assert s.load == pytest.approx(0.4)
        assert s.free == pytest.approx(0.6)
        assert len(s) == 1

    def test_two_tenants_coexist(self):
        s = Server(server_id=0)
        s.add(replica(1, load=0.4))
        s.add(replica(2, load=0.5))
        assert s.load == pytest.approx(0.9)
        assert s.tenant_ids == {1, 2}

    def test_duplicate_tenant_rejected(self):
        s = Server(server_id=0)
        s.add(replica(1, index=0))
        with pytest.raises(PlacementError):
            s.add(replica(1, index=1))

    def test_capacity_enforced(self):
        s = Server(server_id=0)
        s.add(replica(1, load=0.7))
        with pytest.raises(CapacityError):
            s.add(replica(2, load=0.5))

    def test_exact_fill_allowed(self):
        s = Server(server_id=0)
        s.add(replica(1, load=0.5))
        s.add(replica(2, load=0.5))
        assert s.load == pytest.approx(1.0)


class TestServerRemove:
    def test_remove_returns_replica(self):
        s = Server(server_id=0)
        s.add(replica(1, load=0.4))
        out = s.remove((1, 0))
        assert out.load == pytest.approx(0.4)
        assert s.load == pytest.approx(0.0)
        assert len(s) == 0

    def test_remove_missing_raises(self):
        s = Server(server_id=0)
        with pytest.raises(PlacementError):
            s.remove((9, 0))

    def test_hosts_tenant(self):
        s = Server(server_id=0)
        s.add(replica(5))
        assert s.hosts_tenant(5)
        assert not s.hosts_tenant(6)


class TestServerMisc:
    def test_iteration_yields_replicas(self):
        s = Server(server_id=0)
        s.add(replica(1, load=0.2))
        s.add(replica(2, load=0.3))
        assert sorted(r.tenant_id for r in s) == [1, 2]

    def test_tags_are_per_instance(self):
        a, b = Server(server_id=0), Server(server_id=1)
        a.tags["class"] = 3
        assert "class" not in b.tags

    def test_custom_capacity(self):
        s = Server(server_id=0, capacity=2.0)
        s.add(replica(1, load=1.0))
        s.add(replica(2, load=0.9))
        assert s.free == pytest.approx(0.1)
