"""Processor-sharing server machine model.

Models the paper's testbed machines (Intel Xeon, 12 cores) executing
single-threaded analytics queries: when ``n`` queries are active each
runs at rate ``min(1, cores/n)`` — full speed while the machine has spare
cores, fair-shared beyond that.  This is the egalitarian processor
sharing discipline, which matches a database executing many concurrent
scans.

Implementation uses the *virtual time* technique so each arrival or
departure costs ``O(log n)`` instead of rescanning all jobs: with all
jobs sharing one rate ``r(n)``, define virtual progress ``V`` with
``dV/dt = r(n(t))``; a job arriving at virtual time ``V0`` with demand
``w`` departs when ``V`` reaches ``V0 + w``.  A min-heap of departure
virtual times yields the next physical departure.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .engine import EventHandle, Simulator

#: Cores per machine on the paper's testbed.
DEFAULT_CORES = 12

_V_EPS = 1e-9


class Machine:
    """One server machine executing queries under processor sharing."""

    def __init__(self, sim: Simulator, machine_id: int,
                 cores: int = DEFAULT_CORES) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.sim = sim
        self.machine_id = machine_id
        self.cores = cores
        self.failed = False
        self._virtual = 0.0
        self._last_update = 0.0
        #: job_id -> (finish_virtual, completion callback)
        self._jobs: Dict[int, Tuple[float, Callable[[], None]]] = {}
        self._finish_heap: List[Tuple[float, int]] = []
        self._departure: Optional[EventHandle] = None
        self._job_ids = itertools.count()
        # Busy-time integral (in core-seconds) for utilization stats.
        self._busy_core_seconds = 0.0
        self.completed_jobs = 0

    # ------------------------------------------------------------------
    # Virtual-time bookkeeping
    # ------------------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _rate(self) -> float:
        """Service rate each active job receives (<= 1 core)."""
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return min(1.0, self.cores / n)

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            n = len(self._jobs)
            self._virtual += dt * self._rate()
            self._busy_core_seconds += dt * min(n, self.cores)
        self._last_update = now

    def _reschedule_departure(self) -> None:
        if self._departure is not None:
            self._departure.cancel()
            self._departure = None
        # Drop stale heap heads (jobs already completed/aborted).
        heap = self._finish_heap
        while heap and heap[0][1] not in self._jobs:
            heapq.heappop(heap)
        if not heap:
            return
        finish_v = heap[0][0]
        rate = self._rate()
        if rate <= 0:
            raise SimulationError(
                f"machine {self.machine_id}: jobs active but rate is 0")
        delay = max(0.0, (finish_v - self._virtual) / rate)
        self._departure = self.sim.schedule(delay, self._depart)

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def submit(self, demand: float,
               on_complete: Callable[[], None]) -> int:
        """Start a query needing ``demand`` core-seconds; returns job id.

        ``on_complete`` fires (through the simulator) when the query
        finishes.  Submitting to a failed machine is an error — routing
        must check :attr:`failed` first.
        """
        if self.failed:
            raise SimulationError(
                f"machine {self.machine_id} is failed; cannot submit")
        if demand <= 0:
            raise SimulationError(f"demand must be positive, got {demand}")
        self._advance()
        job_id = next(self._job_ids)
        finish_v = self._virtual + demand
        self._jobs[job_id] = (finish_v, on_complete)
        heapq.heappush(self._finish_heap, (finish_v, job_id))
        self._reschedule_departure()
        return job_id

    def _depart(self) -> None:
        self._departure = None
        self._advance()
        completed: List[Callable[[], None]] = []
        heap = self._finish_heap
        while heap:
            finish_v, job_id = heap[0]
            if job_id not in self._jobs:
                heapq.heappop(heap)
                continue
            if finish_v <= self._virtual + _V_EPS:
                heapq.heappop(heap)
                completed.append(self._jobs.pop(job_id)[1])
            else:
                break
        self._reschedule_departure()
        self.completed_jobs += len(completed)
        for callback in completed:
            callback()

    def abort(self, job_id: int) -> bool:
        """Remove a job without completing it; True if it was active."""
        self._advance()
        if self._jobs.pop(job_id, None) is None:
            return False
        self._reschedule_departure()
        return True

    def fail(self) -> List[Callable[[], None]]:
        """Mark the machine failed, aborting all active queries.

        Returns the completion callbacks of the aborted queries so the
        router can re-issue them against surviving replicas (clients
        re-execute, they do not observe a phantom completion).
        """
        self._advance()
        self.failed = True
        aborted = [cb for _finish, cb in self._jobs.values()]
        self._jobs.clear()
        self._finish_heap.clear()
        if self._departure is not None:
            self._departure.cancel()
            self._departure = None
        return aborted

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean fraction of cores busy since time 0."""
        self._advance()
        horizon = self.sim.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return self._busy_core_seconds / (horizon * self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAILED" if self.failed else f"{len(self._jobs)} jobs"
        return f"Machine({self.machine_id}, {state})"
